package core

import (
	"sync"
	"testing"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Characterizers are expensive to set up (blocking-instruction discovery
// measures hundreds of candidates), so tests share one per generation.
var (
	charMu    sync.Mutex
	charCache = map[uarch.Generation]*Characterizer{}
)

func charFor(t *testing.T, gen uarch.Generation) *Characterizer {
	t.Helper()
	charMu.Lock()
	defer charMu.Unlock()
	if c, ok := charCache[gen]; ok {
		return c
	}
	c := NewForArch(uarch.Get(gen))
	if err := c.ensureBlocking(); err != nil {
		t.Fatalf("discovering blocking instructions on %s: %v", gen, err)
	}
	charCache[gen] = c
	return c
}

func variant(t *testing.T, c *Characterizer, name string) *isa.Instr {
	t.Helper()
	in, err := c.gen.lookupVariant(name)
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	return in
}

func TestBlockingInstructionsCoverCoreCombinations(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	bs, err := c.Blocking()
	if err != nil {
		t.Fatal(err)
	}
	// The ALU, shuffle, load and store combinations must be present for the
	// SSE set on Skylake.
	for _, key := range []string{"0156", "5", "23", "4"} {
		if _, ok := bs.SSE[key]; !ok {
			t.Errorf("no SSE blocking instruction for port combination p%s (have %v)", key, sortedCombos(bs.SSE))
		}
	}
	// Blocking instructions must be 1-µop instructions bound to exactly the
	// advertised combination according to the ground truth.
	for key, b := range bs.SSE {
		perf := c.Arch().Perf(b.Instr)
		truth := GroundTruthUsage(perf)
		if b.Instr.Mnemonic == "MOV" && b.Instr.WritesMemory() {
			continue // the store blocking instruction has two µops by design
		}
		if b.Instr.Mnemonic == "MOV" && b.Instr.ReadsMemory() {
			continue // the load blocking instruction
		}
		if len(truth) != 1 {
			t.Errorf("blocking instruction %s for p%s is not a single-combination instruction: %v",
				b.Instr.Name, key, truth)
		}
	}
}

func TestBlockingSetsSeparateSSEAndAVX(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	bs, err := c.Blocking()
	if err != nil {
		t.Fatal(err)
	}
	for key, b := range bs.SSE {
		if b.Instr.Extension.IsAVX() {
			t.Errorf("SSE blocking set contains AVX instruction %s for p%s", b.Instr.Name, key)
		}
	}
	for key, b := range bs.AVX {
		if b.Instr.Extension.IsSSE() {
			t.Errorf("AVX blocking set contains SSE instruction %s for p%s", b.Instr.Name, key)
		}
	}
}

func TestPortUsageSimpleALU(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "ADD_R64_R64")
	pu, err := c.PortUsage(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := GroundTruthUsage(c.Arch().Perf(in))
	if !pu.Equal(want) {
		t.Fatalf("ADD_R64_R64 port usage = %v, want %v", pu, want)
	}
}

func TestPortUsageMOVQ2DQSkylake(t *testing.T) {
	// Section 7.3.3: MOVQ2DQ on Skylake is 1*p0 + 1*p015, which an
	// isolation-based measurement cannot distinguish from 1*p0 + 1*p15.
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "MOVQ2DQ_XMM_MM")
	pu, err := c.PortUsage(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pu.String(), "1*p0+1*p015"; got != want {
		t.Fatalf("MOVQ2DQ port usage = %s, want %s", got, want)
	}
}

func TestPortUsageADCHaswell(t *testing.T) {
	// Section 5.1: ADC on Haswell is 1*p0156 + 1*p06, not 2*p0156.
	c := charFor(t, uarch.Haswell)
	in := variant(t, c, "ADC_R64_R64")
	pu, err := c.PortUsage(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pu.String(), "1*p06+1*p0156"; got != want {
		t.Fatalf("ADC port usage = %s, want %s", got, want)
	}
}

func TestPortUsagePBLENDVBNehalem(t *testing.T) {
	// Section 5.1: PBLENDVB on Nehalem is 2*p05, although in isolation one
	// µop appears on port 0 and one on port 5.
	c := charFor(t, uarch.Nehalem)
	in := variant(t, c, "PBLENDVB_XMM_XMM")
	pu, err := c.PortUsage(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pu.String(), "2*p05"; got != want {
		t.Fatalf("PBLENDVB port usage = %s, want %s", got, want)
	}
}

func TestPortUsageStoreInstruction(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "MOV_M64_R64")
	pu, err := c.PortUsage(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := GroundTruthUsage(c.Arch().Perf(in))
	if !pu.Equal(want) {
		t.Fatalf("MOV_M64_R64 port usage = %v, want %v", pu, want)
	}
}

func TestPortUsageMatchesGroundTruthSample(t *testing.T) {
	// A broader sample of instructions on Skylake: the inferred port usage
	// must match the simulator's ground truth.
	c := charFor(t, uarch.Skylake)
	names := []string{
		"SUB_R32_R32", "IMUL_R64_R64", "LEA_R64_M64", "POPCNT_R64_R64",
		"PADDD_XMM_XMM", "PSHUFD_XMM_XMM_I8", "MULPS_XMM_XMM",
		"VADDPS_YMM_YMM_YMM", "PAND_XMM_XMM", "MOV_R64_M64",
	}
	for _, name := range names {
		in := variant(t, c, name)
		pu, err := c.PortUsage(in, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		want := GroundTruthUsage(c.Arch().Perf(in))
		if !pu.Equal(want) {
			t.Errorf("%s: port usage = %v, want %v", name, pu, want)
		}
	}
}

func TestLatencyAESDECSandyBridge(t *testing.T) {
	// Section 7.3.1: on Sandy Bridge, lat(XMM1, XMM1) is 8 cycles but
	// lat(XMM2, XMM1) is only about 1 cycle, because the round key is only
	// needed for the final XOR.
	c := charFor(t, uarch.SandyBridge)
	in := variant(t, c, "AESDEC_XMM_XMM")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	p00, ok := lat.Lookup(0, 0)
	if !ok {
		t.Fatal("no latency for operand pair (op1, op1)")
	}
	p10, ok := lat.Lookup(1, 0)
	if !ok {
		t.Fatal("no latency for operand pair (op2, op1)")
	}
	if p00.Cycles < 7.5 || p00.Cycles > 8.5 {
		t.Errorf("lat(op1, op1) = %.2f, want 8", p00.Cycles)
	}
	if p10.Cycles > 2.5 {
		t.Errorf("lat(op2, op1) = %.2f, want about 1", p10.Cycles)
	}
}

func TestLatencyAESDECHaswell(t *testing.T) {
	// On Haswell both operand pairs have a latency of 7 cycles.
	c := charFor(t, uarch.Haswell)
	in := variant(t, c, "AESDEC_XMM_XMM")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	p00, _ := lat.Lookup(0, 0)
	p10, _ := lat.Lookup(1, 0)
	if p00.Cycles < 6.5 || p00.Cycles > 7.5 {
		t.Errorf("lat(op1, op1) = %.2f, want 7", p00.Cycles)
	}
	if p10.Cycles < 6.5 || p10.Cycles > 7.5 {
		t.Errorf("lat(op2, op1) = %.2f, want 7", p10.Cycles)
	}
}

func TestLatencySHLDNehalem(t *testing.T) {
	// Section 7.3.2: on Nehalem, lat(R1, R1) is 3 cycles and lat(R2, R1) is
	// 4 cycles, which explains why prior publications disagree.
	c := charFor(t, uarch.Nehalem)
	in := variant(t, c, "SHLD_R64_R64_I8")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	p00, ok := lat.Lookup(0, 0)
	if !ok {
		t.Fatal("no latency for (op1, op1)")
	}
	p10, ok := lat.Lookup(1, 0)
	if !ok {
		t.Fatal("no latency for (op2, op1)")
	}
	if p00.Cycles < 2.5 || p00.Cycles > 3.5 {
		t.Errorf("lat(R1, R1) = %.2f, want 3", p00.Cycles)
	}
	if p10.Cycles < 3.5 || p10.Cycles > 4.5 {
		t.Errorf("lat(R2, R1) = %.2f, want 4", p10.Cycles)
	}
}

func TestLatencySHLDSkylakeSameRegister(t *testing.T) {
	// Section 7.3.2: on Skylake the latency is 3 cycles with distinct
	// registers but 1 cycle when the same register is used for both
	// operands.
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "SHLD_R64_R64_I8")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	p10, ok := lat.Lookup(1, 0)
	if !ok {
		t.Fatal("no latency for (op2, op1)")
	}
	if p10.Cycles < 2.5 || p10.Cycles > 3.5 {
		t.Errorf("lat(R2, R1) = %.2f, want 3", p10.Cycles)
	}
	var sameReg *OperandPairLatency
	for i := range lat.Pairs {
		if lat.Pairs[i].SameRegister && lat.Pairs[i].Source == 1 && lat.Pairs[i].Dest == 0 {
			sameReg = &lat.Pairs[i]
		}
	}
	if sameReg == nil {
		t.Fatal("no same-register measurement for (op2, op1)")
	}
	if sameReg.Cycles > 1.5 {
		t.Errorf("same-register latency = %.2f, want 1", sameReg.Cycles)
	}
}

func TestLatencyMemoryOperand(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "ADD_R64_M64")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	// The memory -> register latency should be at least the load latency.
	p10, ok := lat.Lookup(1, 0)
	if !ok {
		t.Fatal("no latency for (mem, reg)")
	}
	if p10.Cycles < float64(c.Arch().LoadLatency()) {
		t.Errorf("memory-to-register latency %.2f below load latency %d", p10.Cycles, c.Arch().LoadLatency())
	}
	// The register -> register latency is 1 cycle.
	p00, ok := lat.Lookup(0, 0)
	if !ok {
		t.Fatal("no latency for (reg, reg)")
	}
	if p00.Cycles < 0.5 || p00.Cycles > 1.5 {
		t.Errorf("register self latency = %.2f, want 1", p00.Cycles)
	}
}

func TestLatencyFlagsToRegisterCMOV(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "CMOVZ_R64_R64")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	flagsIdx := in.OperandIndex("FLAGS")
	if flagsIdx < 0 {
		t.Fatal("CMOVZ has no FLAGS operand")
	}
	p, ok := lat.Lookup(flagsIdx, 0)
	if !ok {
		t.Fatal("no latency for (flags, reg)")
	}
	if p.Cycles < 0.5 || p.Cycles > 2.5 {
		t.Errorf("flags-to-register latency = %.2f, want 1-2", p.Cycles)
	}
}

func TestLatencyDividerValueDependent(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "DIV_R64")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Pairs) == 0 {
		t.Fatal("no latency pairs for DIV_R64")
	}
	p := lat.Pairs[0]
	if p.FastValueCycles <= 0 {
		t.Fatal("divider latency has no fast-value measurement")
	}
	if p.FastValueCycles >= p.Cycles {
		t.Errorf("fast-value latency %.2f should be below slow-value latency %.2f", p.FastValueCycles, p.Cycles)
	}
	if p.Cycles < 10 {
		t.Errorf("DIV_R64 latency %.2f is implausibly low", p.Cycles)
	}
}

func TestThroughputADDSkylake(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "ADD_R64_R64")
	pu, err := c.PortUsage(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Throughput(in, pu)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Measured < 0.2 || tp.Measured > 0.4 {
		t.Errorf("measured throughput = %.3f, want about 0.25", tp.Measured)
	}
	if tp.Computed < 0.2 || tp.Computed > 0.3 {
		t.Errorf("computed throughput = %.3f, want 0.25", tp.Computed)
	}
}

func TestThroughputCMCImplicitDependency(t *testing.T) {
	// Section 7.2: CMC reads and writes the carry flag, so its measured
	// throughput (Definition 2) is 1 cycle, while the port-usage-based
	// throughput (Definition 1) is 0.25 on Skylake. IACA reports 0.25, which
	// is impossible to observe in practice.
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "CMC")
	pu, err := c.PortUsage(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Throughput(in, pu)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Measured < 0.9 {
		t.Errorf("measured CMC throughput = %.3f, want about 1 (carry-flag dependency)", tp.Measured)
	}
	if tp.Computed > 0.3 {
		t.Errorf("computed CMC throughput = %.3f, want 0.25", tp.Computed)
	}
}

func TestThroughputDividerValues(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "DIV_R32")
	tp, err := c.Throughput(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp.FastValueMeasured <= 0 {
		t.Fatal("no fast-value throughput for DIV_R32")
	}
	if tp.FastValueMeasured >= tp.Measured {
		t.Errorf("fast-value throughput %.2f should be below slow-value throughput %.2f",
			tp.FastValueMeasured, tp.Measured)
	}
}

func TestCharacterizeInstrEndToEnd(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "IMUL_R64_R64")
	res, err := c.CharacterizeInstr(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != "" {
		t.Fatalf("IMUL_R64_R64 unexpectedly skipped: %s", res.Skipped)
	}
	if res.Uops < 0.5 || res.Uops > 1.5 {
		t.Errorf("IMUL µops = %.2f, want 1", res.Uops)
	}
	p00, ok := res.Latency.Lookup(0, 0)
	if !ok || p00.Cycles < 2.5 || p00.Cycles > 3.5 {
		t.Errorf("IMUL latency = %+v, want 3", p00)
	}
	if res.Throughput.Computed < 0.9 || res.Throughput.Computed > 1.1 {
		t.Errorf("IMUL computed throughput = %.2f, want 1 (single port)", res.Throughput.Computed)
	}
}

func TestCharacterizeAllSubset(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	names := []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM", "CPUID", "JZ_I32"}
	res, err := c.CharacterizeAll(Options{Only: names})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(names) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(names))
	}
	if res.Results["CPUID"].Skipped == "" {
		t.Error("CPUID should be marked as skipped (system instruction)")
	}
	if res.Results["JZ_I32"].Skipped == "" {
		t.Error("JZ_I32 should be marked as skipped (control flow)")
	}
	if res.Results["ADD_R64_R64"].Skipped != "" {
		t.Errorf("ADD_R64_R64 unexpectedly skipped: %s", res.Results["ADD_R64_R64"].Skipped)
	}
}

func TestZeroIdiomDetection(t *testing.T) {
	// Section 7.3.6: the PCMPGT instructions are dependency-breaking idioms.
	// With the same register for both operands, the measured "latency" of
	// the dependency chain collapses.
	c := charFor(t, uarch.Skylake)
	in := variant(t, c, "PCMPGTD_XMM_XMM")
	lat, err := c.Latency(in)
	if err != nil {
		t.Fatal(err)
	}
	var distinct, same float64
	var haveSame bool
	for _, p := range lat.Pairs {
		if p.Source == 1 && p.Dest == 0 {
			if p.SameRegister {
				same = p.Cycles
				haveSame = true
			} else {
				distinct = p.Cycles
			}
		}
	}
	if !haveSame {
		t.Fatal("no same-register measurement for PCMPGTD")
	}
	if same >= distinct && same > 0.5 {
		t.Errorf("same-register latency %.2f should collapse below distinct-register latency %.2f (dependency-breaking idiom)",
			same, distinct)
	}
}
