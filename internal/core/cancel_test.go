package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"uopsinfo/internal/uarch"
)

// TestCharacterizeCancellation checks the Options.Context contract on both
// scheduler paths: a context cancelled mid-run stops the run with an error
// that still matches context.Canceled, instead of measuring on.
func TestCharacterizeCancellation(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	only := sampleNames(c, 100)
	if len(only) < 5 {
		t.Fatalf("sample too small: %d variants", len(only))
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		measured := 0
		_, err := c.CharacterizeAll(Options{
			Only:    only,
			Workers: workers,
			Context: ctx,
			Progress: func(done, total int, name string) {
				mu.Lock()
				measured = done
				mu.Unlock()
				cancel() // cancel after the first completed variant
			},
		})
		if err == nil {
			t.Fatalf("workers=%d: cancelled run returned no error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error %v does not match context.Canceled", workers, err)
		}
		mu.Lock()
		got := measured
		mu.Unlock()
		if got >= len(only) {
			t.Errorf("workers=%d: all %d variants measured despite cancellation", workers, got)
		}
		cancel()
	}
}

// TestCharacterizePreCancelled pins the fast path: an already-cancelled
// context fails before anything is measured.
func TestCharacterizePreCancelled(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.CharacterizeAll(Options{
		Only:    []string{"ADD_R64_R64"},
		Context: ctx,
		Progress: func(done, total int, name string) {
			t.Error("a pre-cancelled run measured a variant")
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}

// TestBlockingDiscoveryCancellation checks cancellation between blocking
// candidates, for both worker counts, on a fresh characterizer (the shared
// one already has its blocking set).
func TestBlockingDiscoveryCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := NewForArch(uarch.Get(uarch.SandyBridge))
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		var mu sync.Mutex
		_, err := c.DiscoverBlocking(Options{
			Workers: workers,
			Context: ctx,
			BlockingProgress: func(done, total int, name string) {
				mu.Lock()
				seen = done
				mu.Unlock()
				cancel()
			},
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancelled discovery returned %v", workers, err)
		}
		mu.Lock()
		got := seen
		mu.Unlock()
		if got == 0 {
			t.Errorf("workers=%d: cancellation fired before any candidate", workers)
		}
		cancel()
	}
}

// TestVariantCallbackContract checks Options.Variant on both scheduler
// paths: every measured variant is reported exactly once with the record
// that lands in the result, and resume-merged partial records are not
// reported.
func TestVariantCallbackContract(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	only := sampleNames(c, 150)
	if len(only) < 3 {
		t.Fatalf("sample too small: %d variants", len(only))
	}
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		recs := make(map[string]*InstrResult)
		partial := map[string]*InstrResult{}
		res, err := c.CharacterizeResume(Options{
			Only:    only,
			Workers: workers,
			Variant: func(name string, rec *InstrResult) {
				mu.Lock()
				defer mu.Unlock()
				if recs[name] != nil {
					t.Errorf("workers=%d: %s reported twice", workers, name)
				}
				recs[name] = rec
			},
		}, partial)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(only) {
			t.Fatalf("workers=%d: %d variant callbacks, want %d", workers, len(recs), len(only))
		}
		for name, rec := range recs {
			if res.Results[name] != rec {
				t.Errorf("workers=%d: %s callback record is not the result record", workers, name)
			}
		}

		// A fully covered resume is a pure merge: no callbacks at all.
		res2, err := c.CharacterizeResume(Options{
			Only:    only,
			Workers: workers,
			Variant: func(name string, rec *InstrResult) {
				t.Errorf("workers=%d: resume-merged %s reported as measured", workers, name)
			},
		}, res.Results)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res2.Results, res.Results) {
			t.Errorf("workers=%d: fully covered resume differs from original result", workers)
		}
	}
}
