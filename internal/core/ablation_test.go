package core

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Ablation tests for the design choices called out in DESIGN.md: why MOVSX is
// used for latency chains instead of MOV, and why the measurement protocol's
// copy differencing matters.

func TestAblationMOVChainUnreliableDueToMoveElimination(t *testing.T) {
	// Section 5.2.1: MOV chains are unreliable because a fraction of the
	// dependent moves is eliminated at rename, so a chain of MOVs runs
	// faster than one cycle per move; MOVSX is never eliminated.
	c := charFor(t, uarch.Skylake)
	h := c.Harness()

	mov := variant(t, c, "MOV_R64_R64")
	movsx := variant(t, c, "MOVSX_R64_R16")

	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX}
	var movChain, movsxChain asmgen.Sequence
	for i := 0; i < 12; i++ {
		dst := regs[(i+1)%3]
		src := regs[i%3]
		movChain = append(movChain, asmgen.MustInst(mov, asmgen.RegOperand(dst), asmgen.RegOperand(src)))
		movsxChain = append(movsxChain, asmgen.MustInst(movsx,
			asmgen.RegOperand(dst), asmgen.RegOperand(src.InFamily(isa.ClassGPR16))))
	}
	movRes, err := h.Measure(movChain)
	if err != nil {
		t.Fatal(err)
	}
	movsxRes, err := h.Measure(movsxChain)
	if err != nil {
		t.Fatal(err)
	}
	movPer := movRes.Cycles / 12
	movsxPer := movsxRes.Cycles / 12
	if movsxPer < 0.9 || movsxPer > 1.1 {
		t.Errorf("MOVSX chain = %.2f cycles per link, want exactly 1", movsxPer)
	}
	if movPer >= movsxPer {
		t.Errorf("MOV chain (%.2f) should be faster than MOVSX chain (%.2f) because some moves are eliminated"+
			" — which is exactly why MOV is unsuitable as a chain instruction", movPer, movsxPer)
	}
}

func TestAblationDifferencingRemovesOverheadBias(t *testing.T) {
	// Without the n/n+100 copy differencing of Algorithm 2, the constant
	// overhead of the serializing instructions and counter reads biases the
	// per-instruction cycle count upward.
	c := charFor(t, uarch.Skylake)
	h := c.Harness()
	add := variant(t, c, "ADD_R64_R64")
	seq := asmgen.Sequence{asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX))}

	// Protocol measurement: about 0.25-1 cycles per ADD.
	res, err := h.Measure(seq)
	if err != nil {
		t.Fatal(err)
	}
	// Raw single run including overhead: much larger.
	raw, err := h.Runner().Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	rawWithOverhead := float64(raw.Cycles) + float64(h.Config().OverheadCycles)
	if res.Cycles >= rawWithOverhead {
		t.Errorf("protocol measurement (%.2f) should be far below the raw reading with overhead (%.2f)",
			res.Cycles, rawWithOverhead)
	}
	if res.Cycles > 2 {
		t.Errorf("protocol measurement of a single ADD = %.2f cycles, want about 1 or less", res.Cycles)
	}
}

func TestAblationBlockingVersusIsolationOnGroundTruth(t *testing.T) {
	// For a sample of Skylake instructions, Algorithm 1 must match the
	// ground truth exactly, while the isolation observation alone (average
	// µops per port) cannot distinguish combined port groups. This is the
	// quantitative version of the Section 5.1 argument.
	c := charFor(t, uarch.Skylake)
	names := []string{"MOVQ2DQ_XMM_MM", "ADD_R64_R64", "PADDD_XMM_XMM", "IMUL_R64_R64"}
	for _, name := range names {
		in := variant(t, c, name)
		pu, err := c.PortUsage(in, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		truth := GroundTruthUsage(c.Arch().Perf(in))
		if !pu.Equal(truth) {
			t.Errorf("%s: Algorithm 1 got %v, ground truth %v", name, pu, truth)
		}
	}
}

// Benchmarks for the inference algorithms themselves (cost per instruction).

func benchChar(b *testing.B) *Characterizer {
	b.Helper()
	charMu.Lock()
	defer charMu.Unlock()
	if c, ok := charCache[uarch.Skylake]; ok {
		return c
	}
	c := NewForArch(uarch.Get(uarch.Skylake))
	if err := c.ensureBlocking(); err != nil {
		b.Fatal(err)
	}
	charCache[uarch.Skylake] = c
	return c
}

func BenchmarkPortUsageInference(b *testing.B) {
	c := benchChar(b)
	in := c.Arch().InstrSet().Lookup("MOVQ2DQ_XMM_MM")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PortUsage(in, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyInference(b *testing.B) {
	c := benchChar(b)
	in := c.Arch().InstrSet().Lookup("AESDEC_XMM_XMM")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Latency(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughputInference(b *testing.B) {
	c := benchChar(b)
	in := c.Arch().InstrSet().Lookup("ADD_R64_R64")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Throughput(in, PortUsage{"0156": 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockingInstructionDiscovery(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewForArch(arch)
		if _, err := c.FindBlockingInstructions(); err != nil {
			b.Fatal(err)
		}
	}
}
