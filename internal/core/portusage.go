package core

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
)

// maxBlockRep caps the number of blocking-instruction copies per measurement.
// The paper uses maxLatency * number of ports; the cap keeps pathological
// latency estimates from exploding the benchmark size on the simulator.
const maxBlockRep = 256

// PortUsage infers the port usage of the instruction using Algorithm 1 of the
// paper: for every port combination (processed in order of increasing size),
// the instruction is run after a long sequence of blocking instructions for
// that combination; the µops measured on the combination's ports, minus the
// blocking µops and minus the µops already attributed to strict subsets, can
// only execute on exactly that combination.
//
// maxLatency is the maximum operand-pair latency of the instruction (used to
// size the blocking sequences); pass 0 to let the function estimate it.
func (c *Characterizer) PortUsage(in *isa.Instr, maxLatency float64) (PortUsage, error) {
	if err := c.ensureBlocking(); err != nil {
		return nil, err
	}
	blocking := c.blocking.For(in)

	// Measure the instruction in isolation: total µop count and the ports
	// used, which restricts the combinations the loop has to consider.
	isoPorts, _, isoUops, err := c.isolationProfile(in, 4)
	if err != nil {
		return nil, err
	}
	totalUops := isoUops
	if totalUops < 0.4 {
		// All µops are handled at rename (NOPs, eliminated moves).
		return PortUsage{}, nil
	}
	if maxLatency <= 0 {
		maxLatency = c.estimateMaxLatency(in)
	}
	blockRep := int(maxLatency+0.999) * c.gen.arch.NumPorts()
	if blockRep < 8 {
		blockRep = 8
	}
	if blockRep > maxBlockRep {
		blockRep = maxBlockRep
	}

	isoMask := portMask(isoPorts)
	usage := make(PortUsage)
	attributed := 0.0

	// The instance of the instruction under test; the blocking instructions
	// must avoid its registers.
	alloc := c.gen.newAlloc()
	testInst, err := c.gen.instantiate(in, nil, alloc)
	if err != nil {
		return nil, err
	}
	var avoid []isa.Reg
	//uopslint:ignore detrange avoid is an exclusion set: the allocator folds it into a family-keyed map, so its order never reaches generated code
	for r := range testInst.RegsUsed() {
		avoid = append(avoid, r)
	}

	for _, key := range sortedCombos(blocking) {
		b := blocking[key]
		mask := portMask(b.Ports)
		if mask&isoMask == 0 {
			continue // the instruction never uses these ports
		}
		blockSeq, err := c.blockingSequence(b, blockRep, avoid)
		if err != nil {
			return nil, err
		}
		code := append(append(asmgen.Sequence{}, blockSeq...), testInst)
		res, err := c.gen.h.Measure(code)
		if err != nil {
			return nil, err
		}
		uops := res.UopsOnPorts(b.Ports)
		uops -= float64(blockRep) * b.UopsOnCombo
		// Subtract µops already attributed to strict subsets of this
		// combination.
		for prevKey, prevUops := range usage {
			if prevKey != key && maskOfKey(prevKey)&^mask == 0 {
				uops -= prevUops
			}
		}
		if uops > 0.5 {
			n := float64(int(uops + 0.5))
			usage[key] = n
			attributed += n
		}
		if attributed >= totalUops-0.25 {
			break // all µops attributed (the early-exit optimization)
		}
	}
	return usage, nil
}

// estimateMaxLatency produces a quick upper estimate of the instruction's
// maximum operand-pair latency by running a self-dependent sequence (all
// instances sharing registers) and taking the cycles per instruction.
func (c *Characterizer) estimateMaxLatency(in *isa.Instr) float64 {
	alloc := c.gen.newAlloc()
	inst, err := c.gen.instantiate(in, nil, alloc)
	if err != nil {
		return 4
	}
	const n = 8
	seq := make(asmgen.Sequence, 0, n)
	for i := 0; i < n; i++ {
		seq = append(seq, inst)
	}
	res, err := c.gen.h.Measure(seq)
	if err != nil {
		return 4
	}
	lat := res.Cycles / n
	if lat < 1 {
		lat = 1
	}
	if lat > 64 {
		lat = 64
	}
	return lat
}

// portMask converts a port list to a bitmask.
func portMask(ports []int) uint {
	var m uint
	for _, p := range ports {
		if p >= 0 && p < 32 {
			m |= 1 << uint(p)
		}
	}
	return m
}

// maskOfKey converts a canonical combination key ("015") back to a bitmask.
func maskOfKey(key string) uint {
	var m uint
	for _, ch := range key {
		if ch >= '0' && ch <= '9' {
			m |= 1 << uint(ch-'0')
		}
	}
	return m
}

// MeasuredUops returns the measured µop counts of the instruction: µops
// dispatched to execution ports and µops issued (including those handled at
// rename), per execution.
func (c *Characterizer) MeasuredUops(in *isa.Instr) (portUops, issuedUops float64, err error) {
	seq, err := c.gen.independentInstances(in, 4)
	if err != nil {
		return 0, 0, err
	}
	res, err := c.gen.h.Measure(seq)
	if err != nil {
		return 0, 0, err
	}
	return res.TotalUops / 4, res.IssuedUops / 4, nil
}

// ensureBlocking lazily discovers the blocking instructions (sequentially).
func (c *Characterizer) ensureBlocking() error {
	return c.ensureBlockingWith(Options{})
}

// ensureBlockingWith lazily discovers the blocking instructions, sharding the
// candidate measurements across opts.Workers stacks.
func (c *Characterizer) ensureBlockingWith(opts Options) error {
	if c.blocking != nil {
		return nil
	}
	if _, err := c.DiscoverBlocking(opts); err != nil {
		return fmt.Errorf("core: discovering blocking instructions: %w", err)
	}
	return nil
}
