package core

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/pipesim"
)

// Latency measures the latency of the instruction for every pair of source
// and destination operands (Section 5.2). Each pair gets its own
// automatically constructed dependency chain; unwanted additional
// dependencies (implicit read-modify-write operands such as the status flags,
// or an explicit read-modify-write destination when measuring a different
// source) are broken with dependency-breaking instructions.
func (c *Characterizer) Latency(in *isa.Instr) (LatencyResult, error) {
	var result LatencyResult
	if in.UsesDivider {
		return c.dividerLatency(in)
	}
	for _, s := range in.SourceOperands() {
		for _, d := range in.DestOperands() {
			pairs, err := c.latencyPair(in, s, d)
			if err != nil {
				// Record the failure as a note instead of aborting the whole
				// instruction: some pairs are not measurable.
				result.Pairs = append(result.Pairs, OperandPairLatency{
					Source: s, Dest: d,
					SourceName: in.Operands[s].Name, DestName: in.Operands[d].Name,
					Notes: "not measured: " + err.Error(),
				})
				continue
			}
			result.Pairs = append(result.Pairs, pairs...)
		}
	}
	return result, nil
}

// latencyPair measures lat(s, d) for one operand pair, possibly producing
// multiple measurements (e.g. the separate-chain-instruction and
// same-register scenarios of Section 5.2.1).
func (c *Characterizer) latencyPair(in *isa.Instr, s, d int) ([]OperandPairLatency, error) {
	srcOp := in.Operands[s]
	dstOp := in.Operands[d]
	mk := func(cycles float64, upper bool, sameReg bool, notes string) OperandPairLatency {
		return OperandPairLatency{
			Source: s, Dest: d,
			SourceName: srcOp.Name, DestName: dstOp.Name,
			Cycles: cycles, UpperBound: upper, SameRegister: sameReg, Notes: notes,
		}
	}

	switch {
	case s == d:
		// A read-modify-write operand: the instruction chains with itself.
		cycles, err := c.selfChainLatency(in, s)
		if err != nil {
			return nil, err
		}
		return []OperandPairLatency{mk(cycles, false, false, "self chain")}, nil

	case srcOp.Kind == isa.OpReg && dstOp.Kind == isa.OpReg:
		return c.regRegLatency(in, s, d)

	case srcOp.Kind == isa.OpMem && dstOp.Kind == isa.OpReg:
		return c.memRegLatency(in, s, d)

	case srcOp.Kind == isa.OpReg && dstOp.Kind == isa.OpMem:
		cycles, err := c.regMemRoundTrip(in, s, d)
		if err != nil {
			return nil, err
		}
		return []OperandPairLatency{mk(cycles, false, false,
			"store-load round trip (not a pure latency, Section 5.2.4)")}, nil

	case srcOp.Kind == isa.OpFlags && dstOp.Kind == isa.OpReg:
		return c.flagsRegLatency(in, s, d)

	case srcOp.Kind == isa.OpReg && dstOp.Kind == isa.OpFlags:
		return c.regFlagsLatency(in, s, d)

	case srcOp.Kind == isa.OpFlags && dstOp.Kind == isa.OpFlags:
		cycles, err := c.selfChainLatency(in, s)
		if err != nil {
			return nil, err
		}
		return []OperandPairLatency{mk(cycles, false, false, "flag-to-flag self chain")}, nil

	case srcOp.Kind == isa.OpMem && dstOp.Kind == isa.OpFlags:
		return nil, fmt.Errorf("memory-to-flags chains are not supported")

	case srcOp.Kind == isa.OpFlags && dstOp.Kind == isa.OpMem:
		return nil, fmt.Errorf("flags-to-memory chains are not supported")
	}
	return nil, fmt.Errorf("unsupported operand pair %s -> %s", srcOp.Kind, dstOp.Kind)
}

// measureChainIteration measures the cycles of one iteration of a chain
// benchmark (the harness's copy differencing turns the repeated copies into a
// long chain).
func (c *Characterizer) measureChainIteration(iteration asmgen.Sequence) (float64, error) {
	res, err := c.gen.h.Measure(iteration)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// selfChainLatency measures the latency of the operand chained to itself: the
// instruction is repeated with fixed registers, and dependency-breaking
// instructions are added for all other read-modify-write operands.
func (c *Characterizer) selfChainLatency(in *isa.Instr, opIdx int) (float64, error) {
	alloc := c.gen.newAlloc()
	inst, err := c.gen.instantiate(in, nil, alloc)
	if err != nil {
		return 0, err
	}
	iteration := asmgen.Sequence{inst}
	breakers, err := c.breakOtherDeps(in, inst, alloc, opIdx, opIdx)
	if err != nil {
		return 0, err
	}
	iteration = append(iteration, breakers...)
	return c.measureChainIteration(iteration)
}

// regRegLatency handles the register-to-register cases of Section 5.2.1.
func (c *Characterizer) regRegLatency(in *isa.Instr, s, d int) ([]OperandPairLatency, error) {
	srcOp := in.Operands[s]
	dstOp := in.Operands[d]
	var out []OperandPairLatency

	srcGPR := srcOp.Class.IsGPR()
	dstGPR := dstOp.Class.IsGPR()
	srcVec := srcOp.Class.IsVector() || srcOp.Class == isa.ClassMMX
	dstVec := dstOp.Class.IsVector() || dstOp.Class == isa.ClassMMX

	switch {
	case srcGPR && dstGPR:
		cycles, err := c.chainedLatency(in, s, d, chainMOVSX)
		if err != nil {
			return nil, err
		}
		out = append(out, OperandPairLatency{
			Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
			Cycles: cycles, Notes: "MOVSX chain",
		})
	case srcVec && dstVec && srcOp.Class == dstOp.Class:
		// Both an integer and a floating-point shuffle chain are measured to
		// expose bypass delays; the smaller value is the latency, the larger
		// one includes the bypass delay.
		best := -1.0
		note := ""
		for _, kind := range []chainKind{chainIntShuffle, chainFPShuffle} {
			cycles, err := c.chainedLatency(in, s, d, kind)
			if err != nil {
				continue
			}
			if best < 0 || cycles < best {
				best = cycles
				note = kind.describe()
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("no shuffle chain instruction available for %s", srcOp.Class)
		}
		out = append(out, OperandPairLatency{
			Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
			Cycles: best, Notes: note,
		})
	default:
		// Registers of different types: no chain instruction with a known
		// latency exists; measure the composition with the available
		// transfer instructions and report an upper bound (Section 5.2.1).
		cycles, err := c.crossTypeLatency(in, s, d)
		if err != nil {
			return nil, err
		}
		out = append(out, OperandPairLatency{
			Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
			Cycles: cycles, UpperBound: true, Notes: "cross-register-type chain (upper bound)",
		})
	}

	// Additional same-register scenario when both operands are explicit and
	// of the same class (Section 5.2.1: some instructions behave differently
	// when the same register is used, e.g. SHLD on Skylake or zero idioms).
	if !srcOp.Implicit && !dstOp.Implicit && srcOp.Class == dstOp.Class && s != d {
		cycles, err := c.sameRegisterLatency(in, s, d)
		if err == nil {
			out = append(out, OperandPairLatency{
				Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
				Cycles: cycles, SameRegister: true, Notes: "same register for both operands",
			})
		}
	}
	return out, nil
}

// chainedLatency builds the chain [I ; C ; dependency breakers] where C reads
// the destination operand d and writes the source operand s, measures one
// iteration, and subtracts the chain instruction's own latency.
func (c *Characterizer) chainedLatency(in *isa.Instr, s, d int, kind chainKind) (float64, error) {
	alloc := c.gen.newAlloc()
	fixed := make(map[int]asmgen.Operand)

	srcClass := in.Operands[s].Class
	dstClass := in.Operands[d].Class
	srcReg, err := c.operandRegister(in, s, alloc)
	if err != nil {
		return 0, err
	}
	dstReg, err := c.operandRegister(in, d, alloc)
	if err != nil {
		return 0, err
	}
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(srcReg)
	}
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(dstReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return 0, err
	}
	chainInst, chainLat, err := c.chainInstruction(kind, dstReg, srcReg, dstClass, srcClass)
	if err != nil {
		return 0, err
	}
	iteration := asmgen.Sequence{inst, chainInst}
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return 0, err
	}
	iteration = append(iteration, breakers...)
	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return 0, err
	}
	lat := cycles - chainLat
	if lat < 0 {
		lat = 0
	}
	return lat, nil
}

// sameRegisterLatency measures the chain where the same register is used for
// the source and destination operands.
func (c *Characterizer) sameRegisterLatency(in *isa.Instr, s, d int) (float64, error) {
	alloc := c.gen.newAlloc()
	reg, err := alloc.Fresh(in.Operands[s].Class)
	if err != nil {
		return 0, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(reg)
	}
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(reg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return 0, err
	}
	iteration := asmgen.Sequence{inst}
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return 0, err
	}
	iteration = append(iteration, breakers...)
	return c.measureChainIteration(iteration)
}

// crossTypeLatency measures the instruction composed with a register-transfer
// instruction between the two register types and returns an upper bound on
// the latency (the measured composition time minus one cycle).
func (c *Characterizer) crossTypeLatency(in *isa.Instr, s, d int) (float64, error) {
	alloc := c.gen.newAlloc()
	srcReg, err := c.operandRegister(in, s, alloc)
	if err != nil {
		return 0, err
	}
	dstReg, err := c.operandRegister(in, d, alloc)
	if err != nil {
		return 0, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(srcReg)
	}
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(dstReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return 0, err
	}
	transfers, err := c.transferChain(dstReg, srcReg)
	if err != nil {
		return 0, err
	}
	iteration := append(asmgen.Sequence{inst}, transfers...)
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return 0, err
	}
	iteration = append(iteration, breakers...)
	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return 0, err
	}
	bound := cycles - 1
	if bound < 0 {
		bound = 0
	}
	return bound, nil
}

// memRegLatency handles memory-to-register latencies (Section 5.2.2): the
// double-XOR trick creates a dependency from the destination register back to
// the address register of the memory operand.
func (c *Characterizer) memRegLatency(in *isa.Instr, s, d int) ([]OperandPairLatency, error) {
	srcOp := in.Operands[s]
	dstOp := in.Operands[d]
	alloc := c.gen.newAlloc()

	base, err := alloc.Fresh(isa.ClassGPR64)
	if err != nil {
		return nil, err
	}
	addr := c.gen.arena.Alloc(srcOp.Width / 8)
	dstReg, err := c.operandRegister(in, d, alloc)
	if err != nil {
		return nil, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.MemOperand(base, addr)
	}
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(dstReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return nil, err
	}

	iteration := asmgen.Sequence{inst}
	chainLat := 0.0
	upper := false
	notes := "double-XOR address chain"
	if dstOp.Class.IsGPR() {
		xors, err := c.doubleXOR(base, dstReg.InFamily(isa.ClassGPR64))
		if err != nil {
			return nil, err
		}
		iteration = append(iteration, xors...)
		chainLat = 2
	} else {
		// Destination is not a general-purpose register: transfer it to a
		// GPR first, then apply the double XOR; the result is an upper
		// bound.
		tmp, err := alloc.Fresh(isa.ClassGPR64)
		if err != nil {
			return nil, err
		}
		transfers, err := c.transferChain(dstReg, tmp)
		if err != nil {
			return nil, err
		}
		xors, err := c.doubleXOR(base, tmp)
		if err != nil {
			return nil, err
		}
		iteration = append(iteration, transfers...)
		iteration = append(iteration, xors...)
		chainLat = 3
		upper = true
		notes = "transfer + double-XOR address chain (upper bound)"
	}
	flagBreak, err := c.gen.depBreakFlags(alloc)
	if err != nil {
		return nil, err
	}
	iteration = append(iteration, flagBreak)
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return nil, err
	}
	iteration = append(iteration, breakers...)

	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return nil, err
	}
	lat := cycles - chainLat
	if lat < 0 {
		lat = 0
	}
	return []OperandPairLatency{{
		Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
		Cycles: lat, UpperBound: upper, Notes: notes,
	}}, nil
}

// regMemRoundTrip measures the execution time of the instruction (which
// stores to memory) chained with a load from the same address (Section
// 5.2.4). The value is not a pure store latency but is reported for
// reference.
func (c *Characterizer) regMemRoundTrip(in *isa.Instr, s, d int) (float64, error) {
	srcOp := in.Operands[s]
	dstOp := in.Operands[d]
	alloc := c.gen.newAlloc()

	base, err := alloc.Fresh(isa.ClassGPR64)
	if err != nil {
		return 0, err
	}
	addr := c.gen.arena.Alloc(dstOp.Width / 8)
	srcReg, err := c.operandRegister(in, s, alloc)
	if err != nil {
		return 0, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.MemOperand(base, addr)
	}
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(srcReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return 0, err
	}
	// Load the stored value back into the source register (or into a GPR
	// that is then transferred).
	iteration := asmgen.Sequence{inst}
	if srcOp.Class.IsGPR() {
		load, err := c.gen.lookupVariant("MOV_R64_M64")
		if err != nil {
			return 0, err
		}
		iteration = append(iteration, asmgen.MustInst(load,
			asmgen.RegOperand(srcReg.InFamily(isa.ClassGPR64)), asmgen.MemOperand(base, addr)))
	} else {
		// Load back with a move of the source operand's own register class;
		// a class mismatch here would panic MustInst below (a YMM-source
		// store used to pick the XMM load and crash every full-ISA run on
		// AVX-capable generations). An unhandled class is an error — which
		// the characterizer reports as a skipped variant — never a panic.
		var loadName string
		switch srcOp.Class {
		case isa.ClassXMM:
			loadName = "MOVDQA_XMM_M128"
		case isa.ClassMMX:
			loadName = "MOVQ_MM_M64"
		case isa.ClassYMM:
			loadName = "VMOVDQA_YMM_M256"
		default:
			return 0, fmt.Errorf("core: no load-back variant for %s-source stores", srcOp.Class)
		}
		load, err := c.gen.lookupVariant(loadName)
		if err != nil {
			return 0, err
		}
		iteration = append(iteration, asmgen.MustInst(load,
			asmgen.RegOperand(srcReg), asmgen.MemOperand(base, addr)))
	}
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return 0, err
	}
	iteration = append(iteration, breakers...)
	return c.measureChainIteration(iteration)
}

// flagsRegLatency handles flags-to-register latencies (Section 5.2.3): the
// TEST instruction creates the dependency from the destination register back
// to the flags.
func (c *Characterizer) flagsRegLatency(in *isa.Instr, s, d int) ([]OperandPairLatency, error) {
	dstOp := in.Operands[d]
	if !dstOp.Class.IsGPR() {
		return nil, fmt.Errorf("flags-to-%s chains are not supported", dstOp.Class)
	}
	alloc := c.gen.newAlloc()
	dstReg, err := c.operandRegister(in, d, alloc)
	if err != nil {
		return nil, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, d); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(dstReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return nil, err
	}
	test, err := c.gen.lookupVariant("TEST_R64_R64")
	if err != nil {
		return nil, err
	}
	d64 := dstReg.InFamily(isa.ClassGPR64)
	iteration := asmgen.Sequence{inst, asmgen.MustInst(test, asmgen.RegOperand(d64), asmgen.RegOperand(d64))}
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return nil, err
	}
	iteration = append(iteration, breakers...)
	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return nil, err
	}
	lat := cycles - testLatency
	if lat < 0 {
		lat = 0
	}
	return []OperandPairLatency{{
		Source: s, Dest: d, SourceName: in.Operands[s].Name, DestName: dstOp.Name,
		Cycles: lat, Notes: "TEST chain",
	}}, nil
}

// regFlagsLatency handles register-to-flags latencies: a SETcc instruction
// whose condition reads only flags written by the instruction closes the
// chain back to the source register.
func (c *Characterizer) regFlagsLatency(in *isa.Instr, s, d int) ([]OperandPairLatency, error) {
	srcOp := in.Operands[s]
	dstOp := in.Operands[d]
	if !srcOp.Class.IsGPR() {
		// e.g. PTEST: the source is a vector register; composing SETcc with
		// a GPR-to-vector transfer only yields an upper bound.
		return nil, fmt.Errorf("register-to-flags chains from %s registers are not supported", srcOp.Class)
	}
	setcc := c.pickFlagReader(dstOp.WriteFlags)
	if setcc == nil {
		return nil, fmt.Errorf("no SETcc variant reads a subset of the written flags %s", dstOp.WriteFlags)
	}
	alloc := c.gen.newAlloc()
	srcReg, err := c.operandRegister(in, s, alloc)
	if err != nil {
		return nil, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, s); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(srcReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return nil, err
	}
	src8 := srcReg.InFamily(isa.ClassGPR8)
	if src8 == isa.RegNone {
		return nil, fmt.Errorf("no 8-bit alias for register %s", srcReg)
	}
	iteration := asmgen.Sequence{inst, asmgen.MustInst(setcc, asmgen.RegOperand(src8))}
	breakers, err := c.breakOtherDeps(in, inst, alloc, s, d)
	if err != nil {
		return nil, err
	}
	iteration = append(iteration, breakers...)
	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return nil, err
	}
	setccLat, err := c.setccLatency(setcc)
	if err != nil {
		return nil, err
	}
	lat := cycles - setccLat
	if lat < 0 {
		lat = 0
	}
	return []OperandPairLatency{{
		Source: s, Dest: d, SourceName: srcOp.Name, DestName: dstOp.Name,
		Cycles: lat, Notes: "SETcc chain",
	}}, nil
}

// dividerLatency handles instructions that use the divider units (Section
// 5.2.5): the automatic chain construction cannot be used because the output
// values change the latency class, so the register that is both source and
// destination is re-pinned to the test value with an AND/OR pair each
// iteration, and the measurement is repeated for fast and slow operand
// values.
func (c *Characterizer) dividerLatency(in *isa.Instr) (LatencyResult, error) {
	var result LatencyResult
	// Find the register operand that is both read and written (RAX for the
	// general-purpose divisions, the first operand for the vector ones).
	pinIdx := -1
	for i, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Read && op.Write {
			pinIdx = i
			break
		}
	}
	if pinIdx < 0 {
		return result, nil
	}
	alloc := c.gen.newAlloc()
	pinReg, err := c.operandRegister(in, pinIdx, alloc)
	if err != nil {
		return result, err
	}
	fixed := make(map[int]asmgen.Operand)
	if ei := explicitIndex(in, pinIdx); ei >= 0 {
		fixed[ei] = asmgen.RegOperand(pinReg)
	}
	inst, err := c.gen.instantiate(in, fixed, alloc)
	if err != nil {
		return result, err
	}
	pin, err := c.valuePinSequence(pinReg, alloc)
	if err != nil {
		return result, err
	}
	iteration := append(asmgen.Sequence{inst}, pin...)
	breakers, err := c.breakOtherDeps(in, inst, alloc, pinIdx, pinIdx)
	if err != nil {
		return result, err
	}
	iteration = append(iteration, breakers...)

	slow, fast, err := c.measureWithDividerValues(iteration)
	if err != nil {
		return result, err
	}
	pinLat := float64(len(pin)) // one cycle per pinning instruction
	entry := OperandPairLatency{
		Source: pinIdx, Dest: pinIdx,
		SourceName: in.Operands[pinIdx].Name, DestName: in.Operands[pinIdx].Name,
		Cycles:          maxf(slow-pinLat, 0),
		FastValueCycles: maxf(fast-pinLat, 0),
		Notes:           "AND/OR value-pinned chain (slow and fast operand values)",
	}
	result.Pairs = append(result.Pairs, entry)
	return result, nil
}

// measureWithDividerValues measures one chain iteration under the slow- and
// fast-operand-value regimes.
func (c *Characterizer) measureWithDividerValues(iteration asmgen.Sequence) (slow, fast float64, err error) {
	setter, ok := c.gen.h.Runner().(dividerValueSetter)
	if !ok {
		cycles, err := c.measureChainIteration(iteration)
		return cycles, cycles, err
	}
	setter.SetDividerValues(pipesim.SlowDividerValues)
	slow, err = c.measureChainIteration(iteration)
	if err != nil {
		return 0, 0, err
	}
	setter.SetDividerValues(pipesim.FastDividerValues)
	fast, err = c.measureChainIteration(iteration)
	setter.SetDividerValues(pipesim.SlowDividerValues)
	if err != nil {
		return 0, 0, err
	}
	return slow, fast, nil
}

// dividerValueSetter is implemented by execution substrates that can switch
// the operand-value regime for divider-based instructions.
type dividerValueSetter interface {
	SetDividerValues(pipesim.DividerValues)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
