package core

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
)

// testLatency is the latency attributed to the TEST instruction when it is
// used as a chain instruction (Section 5.2.3). TEST is a simple ALU operation
// whose register-to-flags latency is one cycle on all Intel Core
// generations; it serves as the calibration anchor for the flag chains.
const testLatency = 1.0

// chainKind selects the family of chain instruction used to close a
// register-to-register dependency chain (Section 5.2.1).
type chainKind int

const (
	// chainMOVSX uses MOVSX for general-purpose registers: it is never
	// subject to move elimination and avoids partial-register stalls.
	chainMOVSX chainKind = iota
	// chainIntShuffle uses an integer shuffle (PSHUFD) for SIMD registers.
	chainIntShuffle
	// chainFPShuffle uses a floating-point shuffle (MOVSHDUP) for SIMD
	// registers, to expose bypass delays between domains.
	chainFPShuffle
)

func (k chainKind) describe() string {
	switch k {
	case chainMOVSX:
		return "MOVSX chain"
	case chainIntShuffle:
		return "integer shuffle chain (PSHUFD)"
	case chainFPShuffle:
		return "floating-point shuffle chain (MOVSHDUP)"
	}
	return "chain"
}

// operandRegister returns the concrete register to use for an operand: the
// fixed register for implicit operands, a freshly allocated register of the
// operand's class otherwise.
func (c *Characterizer) operandRegister(in *isa.Instr, opIdx int, alloc *asmgen.Allocator) (isa.Reg, error) {
	op := in.Operands[opIdx]
	if op.Implicit {
		if op.FixedReg == isa.RegNone {
			return isa.RegNone, fmt.Errorf("implicit operand %s has no fixed register", op.Name)
		}
		alloc.MarkUsed(op.FixedReg)
		return op.FixedReg, nil
	}
	return alloc.Fresh(op.Class)
}

// chainInstruction builds the chain instruction C for a register pair: C
// reads a register in readReg's family (the instruction's destination d) and
// writes a register in writeReg's family (the instruction's source s). It
// returns the concrete instruction and C's own latency, measured in isolation
// and cached.
func (c *Characterizer) chainInstruction(kind chainKind, readReg, writeReg isa.Reg, readClass, writeClass isa.RegClass) (*asmgen.Inst, float64, error) {
	switch kind {
	case chainMOVSX:
		v, err := c.gen.lookupVariant("MOVSX_R64_R16")
		if err != nil {
			return nil, 0, err
		}
		src := readReg.InFamily(isa.ClassGPR16)
		dst := writeReg.InFamily(isa.ClassGPR64)
		if src == isa.RegNone || dst == isa.RegNone {
			return nil, 0, fmt.Errorf("registers %s/%s are not general-purpose registers", readReg, writeReg)
		}
		lat, err := c.chainLatency(v.Name)
		if err != nil {
			return nil, 0, err
		}
		return asmgen.MustInst(v, asmgen.RegOperand(dst), asmgen.RegOperand(src)), lat, nil

	case chainIntShuffle, chainFPShuffle:
		name, withImm, err := shuffleVariantFor(kind, readClass)
		if err != nil {
			return nil, 0, err
		}
		v, err := c.gen.lookupVariant(name)
		if err != nil {
			return nil, 0, err
		}
		lat, err := c.chainLatency(v.Name)
		if err != nil {
			return nil, 0, err
		}
		ops := []asmgen.Operand{asmgen.RegOperand(writeReg), asmgen.RegOperand(readReg)}
		if withImm {
			ops = append(ops, asmgen.ImmOperand(0x1b))
		}
		inst, err := asmgen.NewInst(v, ops...)
		if err != nil {
			return nil, 0, err
		}
		return inst, lat, nil
	}
	return nil, 0, fmt.Errorf("unknown chain kind %d", kind)
}

// shuffleVariantFor selects the shuffle chain variant for a SIMD register
// class.
func shuffleVariantFor(kind chainKind, class isa.RegClass) (name string, withImm bool, err error) {
	switch class {
	case isa.ClassXMM:
		if kind == chainIntShuffle {
			return "PSHUFD_XMM_XMM_I8", true, nil
		}
		return "MOVSHDUP_XMM_XMM", false, nil
	case isa.ClassYMM:
		if kind == chainIntShuffle {
			return "VPSHUFD_YMM_YMM_I8", true, nil
		}
		return "VMOVSHDUP_YMM_YMM", false, nil
	case isa.ClassMMX:
		if kind == chainIntShuffle {
			return "MOVQ_MM_MM", false, nil
		}
		return "", false, fmt.Errorf("no floating-point shuffle for MMX registers")
	}
	return "", false, fmt.Errorf("no shuffle chain instruction for register class %s", class)
}

// chainLatency measures the latency of a chain instruction in isolation: two
// instances are chained through alternating registers, and the cycles per
// instance give the latency. Results are cached per variant.
func (c *Characterizer) chainLatency(variantName string) (float64, error) {
	if lat, ok := c.gen.chainLat[variantName]; ok {
		return lat, nil
	}
	v, err := c.gen.lookupVariant(variantName)
	if err != nil {
		return 0, err
	}
	expl := v.ExplicitOperands()
	if len(expl) < 2 || expl[0].Kind != isa.OpReg || expl[1].Kind != isa.OpReg {
		return 0, fmt.Errorf("variant %s is not a two-register chain instruction", variantName)
	}
	alloc := c.gen.newAlloc()
	// The destination class and source class may differ (MOVSX); allocate
	// two families and use the right class member on each side.
	famA, err := alloc.Fresh(isa.ClassGPR64)
	if err != nil {
		return 0, err
	}
	famB, err := alloc.Fresh(isa.ClassGPR64)
	if err != nil {
		return 0, err
	}
	regIn := func(fam isa.Reg, class isa.RegClass) (isa.Reg, error) {
		if class.IsGPR() {
			return fam.InFamily(class), nil
		}
		return alloc.Fresh(class)
	}
	var a0, a1, b0, b1 isa.Reg
	if expl[0].Class.IsGPR() && expl[1].Class.IsGPR() {
		a0, _ = regIn(famA, expl[0].Class)
		a1, _ = regIn(famB, expl[1].Class)
		b0, _ = regIn(famB, expl[0].Class)
		b1, _ = regIn(famA, expl[1].Class)
	} else {
		// SIMD chain instructions use the same class for both operands.
		x, err := alloc.Fresh(expl[0].Class)
		if err != nil {
			return 0, err
		}
		y, err := alloc.Fresh(expl[1].Class)
		if err != nil {
			return 0, err
		}
		a0, a1, b0, b1 = x, y, y, x
	}
	mkOps := func(dst, src isa.Reg) []asmgen.Operand {
		ops := []asmgen.Operand{asmgen.RegOperand(dst), asmgen.RegOperand(src)}
		for i := 2; i < len(expl); i++ {
			ops = append(ops, asmgen.ImmOperand(0x1b))
		}
		return ops
	}
	i1, err := asmgen.NewInst(v, mkOps(a0, a1)...)
	if err != nil {
		return 0, err
	}
	i2, err := asmgen.NewInst(v, mkOps(b0, b1)...)
	if err != nil {
		return 0, err
	}
	res, err := c.gen.h.Measure(asmgen.Sequence{i1, i2})
	if err != nil {
		return 0, err
	}
	lat := res.Cycles / 2
	c.gen.chainLat[variantName] = lat
	return lat, nil
}

// doubleXOR builds the "XOR Ra, Rd ; XOR Ra, Rd" pair of Section 5.2.2 that
// creates a dependency from Rd to the address register Ra while leaving Ra's
// value unchanged.
func (c *Characterizer) doubleXOR(ra, rd isa.Reg) (asmgen.Sequence, error) {
	xor, err := c.gen.lookupVariant("XOR_R64_R64")
	if err != nil {
		return nil, err
	}
	x := asmgen.MustInst(xor, asmgen.RegOperand(ra), asmgen.RegOperand(rd))
	return asmgen.Sequence{x, x}, nil
}

// transferChain builds the instruction(s) that copy a value from register
// `from` to register `to` when the two registers have different types
// (Section 5.2.1: register pairs of different types have no common chain
// instruction).
func (c *Characterizer) transferChain(from, to isa.Reg) (asmgen.Sequence, error) {
	fromClass := from.Class()
	toClass := to.Class()
	build := func(name string, dst, src isa.Reg) (asmgen.Sequence, error) {
		v, err := c.gen.lookupVariant(name)
		if err != nil {
			return nil, err
		}
		inst, err := asmgen.NewInst(v, asmgen.RegOperand(dst), asmgen.RegOperand(src))
		if err != nil {
			return nil, err
		}
		return asmgen.Sequence{inst}, nil
	}
	switch {
	case fromClass.IsGPR() && (toClass == isa.ClassXMM || toClass == isa.ClassYMM):
		return build("MOVQ_XMM_R64", to.InFamily(isa.ClassXMM), from.InFamily(isa.ClassGPR64))
	case (fromClass == isa.ClassXMM || fromClass == isa.ClassYMM) && toClass.IsGPR():
		return build("MOVQ_R64_XMM", to.InFamily(isa.ClassGPR64), from.InFamily(isa.ClassXMM))
	case fromClass.IsGPR() && toClass == isa.ClassMMX:
		return build("MOVQ_MM_R64", to, from.InFamily(isa.ClassGPR64))
	case fromClass == isa.ClassMMX && toClass.IsGPR():
		return build("MOVQ_R64_MM", to.InFamily(isa.ClassGPR64), from)
	case fromClass == isa.ClassMMX && (toClass == isa.ClassXMM || toClass == isa.ClassYMM):
		return build("MOVQ2DQ_XMM_MM", to.InFamily(isa.ClassXMM), from)
	case (fromClass == isa.ClassXMM || fromClass == isa.ClassYMM) && toClass == isa.ClassMMX:
		return build("MOVDQ2Q_MM_XMM", to, from.InFamily(isa.ClassXMM))
	case fromClass.IsGPR() && toClass.IsGPR():
		return build("MOVSX_R64_R16", to.InFamily(isa.ClassGPR64), from.InFamily(isa.ClassGPR16))
	case (fromClass == isa.ClassXMM || fromClass == isa.ClassYMM) &&
		(toClass == isa.ClassXMM || toClass == isa.ClassYMM):
		return build("MOVSHDUP_XMM_XMM", to.InFamily(isa.ClassXMM), from.InFamily(isa.ClassXMM))
	}
	return nil, fmt.Errorf("no transfer instruction from %s to %s", fromClass, toClass)
}

// breakOtherDeps returns dependency-breaking instructions for every operand
// that is both read and written by the instruction and is not the source
// operand of the chain being measured (Section 5.2: such operands would
// otherwise introduce loop-carried dependencies that hide the latency of the
// pair under test).
func (c *Characterizer) breakOtherDeps(in *isa.Instr, inst *asmgen.Inst, alloc *asmgen.Allocator, s, d int) (asmgen.Sequence, error) {
	var seq asmgen.Sequence
	var avoid []isa.Reg
	//uopslint:ignore detrange avoid is an exclusion set: the allocator folds it into a family-keyed map, so its order never reaches generated code
	for r := range inst.RegsUsed() {
		avoid = append(avoid, r)
	}
	for i, op := range in.Operands {
		if i == s {
			continue // the intended dependency path
		}
		if !op.Read || !op.Write {
			continue // no loop-carried dependency through this operand
		}
		switch op.Kind {
		case isa.OpFlags:
			br, err := c.gen.depBreakFlags(alloc, avoid...)
			if err != nil {
				return nil, err
			}
			seq = append(seq, br)
		case isa.OpReg:
			conc := inst.OperandFor(i)
			if conc.Reg == isa.RegNone {
				continue
			}
			// Do not overwrite the register that carries the intended chain
			// (the destination operand d feeds the chain instruction, which
			// appears before these breakers in the iteration, so breaking it
			// afterwards is safe — but if d and s share a register the
			// breaker would cut the chain).
			if i == d && conc.Reg.Family() == inst.OperandFor(s).Reg.Family() {
				continue
			}
			br, err := c.gen.depBreakReg(conc.Reg)
			if err != nil {
				return nil, err
			}
			seq = append(seq, br)
		case isa.OpMem:
			// A read-modify-write memory operand: the loop-carried
			// dependency goes through memory; it cannot be broken without
			// changing the address, which would alter the instruction.
		}
	}
	return seq, nil
}

// pickFlagReader returns a SETcc variant whose condition reads only flags
// written by the instruction (used to close register-to-flags chains).
func (c *Characterizer) pickFlagReader(written isa.FlagSet) *isa.Instr {
	candidates := []struct {
		name string
		flag isa.Flag
	}{
		{"SETZ_R8", isa.FlagZF},
		{"SETB_R8", isa.FlagCF},
		{"SETS_R8", isa.FlagSF},
		{"SETO_R8", isa.FlagOF},
		{"SETP_R8", isa.FlagPF},
	}
	for _, cand := range candidates {
		if !written.Has(cand.flag) {
			continue
		}
		if v := c.gen.set.Lookup(cand.name); v != nil {
			return v
		}
	}
	return nil
}

// setccLatency measures the flags-to-register latency of a SETcc variant by
// chaining it with TEST (whose latency anchors the chain).
func (c *Characterizer) setccLatency(setcc *isa.Instr) (float64, error) {
	key := "setcc:" + setcc.Name
	if lat, ok := c.gen.chainLat[key]; ok {
		return lat, nil
	}
	test, err := c.gen.lookupVariant("TEST_R64_R64")
	if err != nil {
		return 0, err
	}
	alloc := c.gen.newAlloc()
	fam, err := alloc.Fresh(isa.ClassGPR64)
	if err != nil {
		return 0, err
	}
	r8 := fam.InFamily(isa.ClassGPR8)
	iteration := asmgen.Sequence{
		asmgen.MustInst(setcc, asmgen.RegOperand(r8)),
		asmgen.MustInst(test, asmgen.RegOperand(fam), asmgen.RegOperand(fam)),
	}
	cycles, err := c.measureChainIteration(iteration)
	if err != nil {
		return 0, err
	}
	lat := cycles - testLatency
	if lat < 0 {
		lat = 0
	}
	c.gen.chainLat[key] = lat
	return lat, nil
}

// valuePinSequence builds the AND/OR pair of Section 5.2.5 that re-pins a
// register to a chosen test value each iteration while keeping the
// dependency chain through that register intact.
func (c *Characterizer) valuePinSequence(pinReg isa.Reg, alloc *asmgen.Allocator) (asmgen.Sequence, error) {
	var andName, orName string
	switch pinReg.Class() {
	case isa.ClassGPR8, isa.ClassGPR16, isa.ClassGPR32, isa.ClassGPR64:
		andName, orName = "AND_R64_R64", "OR_R64_R64"
		pinReg = pinReg.InFamily(isa.ClassGPR64)
	case isa.ClassXMM:
		andName, orName = "PAND_XMM_XMM", "POR_XMM_XMM"
	case isa.ClassYMM:
		andName, orName = "VPAND_YMM_YMM_YMM", "VPOR_YMM_YMM_YMM"
	case isa.ClassMMX:
		andName, orName = "PAND_MM_MM", "POR_MM_MM"
	default:
		return nil, fmt.Errorf("no value-pinning instructions for register %s", pinReg)
	}
	andV, err := c.gen.lookupVariant(andName)
	if err != nil {
		return nil, err
	}
	orV, err := c.gen.lookupVariant(orName)
	if err != nil {
		return nil, err
	}
	valueReg, err := alloc.Fresh(pinReg.Class())
	if err != nil {
		return nil, err
	}
	mk := func(v *isa.Instr) (*asmgen.Inst, error) {
		if len(v.ExplicitOperands()) == 3 {
			return asmgen.NewInst(v, asmgen.RegOperand(pinReg), asmgen.RegOperand(pinReg), asmgen.RegOperand(valueReg))
		}
		return asmgen.NewInst(v, asmgen.RegOperand(pinReg), asmgen.RegOperand(valueReg))
	}
	a, err := mk(andV)
	if err != nil {
		return nil, err
	}
	o, err := mk(orV)
	if err != nil {
		return nil, err
	}
	return asmgen.Sequence{a, o}, nil
}
