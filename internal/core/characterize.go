package core

import (
	"fmt"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// Characterizer drives the characterization of a microarchitecture: it owns
// the measurement harness, the discovered blocking instructions and the
// per-instruction algorithms (port usage, latency, throughput).
type Characterizer struct {
	gen      *gen
	blocking *BlockingSet
}

// New returns a Characterizer for the given measurement harness.
func New(h *measure.Harness) *Characterizer {
	return &Characterizer{gen: newGen(h)}
}

// NewForArch builds the full stack for a generation: simulator, measurement
// harness with the default configuration, and characterizer.
func NewForArch(arch *uarch.Arch) *Characterizer {
	m := pipesim.New(arch)
	return New(measure.New(m))
}

// Arch returns the target microarchitecture.
func (c *Characterizer) Arch() *uarch.Arch { return c.gen.arch }

// Harness returns the measurement harness in use.
func (c *Characterizer) Harness() *measure.Harness { return c.gen.h }

// Blocking returns the discovered blocking-instruction set, discovering it on
// first use.
func (c *Characterizer) Blocking() (*BlockingSet, error) {
	if err := c.ensureBlocking(); err != nil {
		return nil, err
	}
	return c.blocking, nil
}

// Options controls a whole-ISA characterization run.
type Options struct {
	// Only restricts the run to the named variants (all variants if empty).
	Only []string
	// SkipLatency, SkipPortUsage and SkipThroughput disable parts of the
	// characterization (e.g. for quick µop-count-only comparisons).
	SkipLatency    bool
	SkipPortUsage  bool
	SkipThroughput bool
	// Progress, if non-nil, is called after each instruction.
	Progress func(done, total int, name string)
}

// skipReason classifies instructions that are not fully characterized,
// mirroring the limitations in Section 8 of the paper.
func skipReason(in *isa.Instr) string {
	switch {
	case in.IsSystem:
		return "system instruction"
	case in.IsSerializing:
		return "serializing instruction"
	case in.ControlFlow:
		return "control-flow instruction"
	case in.HasRep:
		return "REP prefix (variable µop count)"
	case in.HasLock:
		return "LOCK prefix"
	}
	return ""
}

// CharacterizeInstr fully characterizes a single instruction variant.
func (c *Characterizer) CharacterizeInstr(in *isa.Instr) (*InstrResult, error) {
	return c.characterizeInstr(in, Options{})
}

func (c *Characterizer) characterizeInstr(in *isa.Instr, opts Options) (*InstrResult, error) {
	result := &InstrResult{Name: in.Name, Mnemonic: in.Mnemonic}

	portUops, issued, err := c.MeasuredUops(in)
	if err != nil {
		return nil, fmt.Errorf("core: measuring µops of %s: %w", in.Name, err)
	}
	result.Uops = portUops
	result.UopsIssued = issued

	if reason := skipReason(in); reason != "" {
		result.Skipped = reason
		return result, nil
	}

	if !opts.SkipLatency {
		lat, err := c.Latency(in)
		if err != nil {
			return nil, fmt.Errorf("core: measuring latency of %s: %w", in.Name, err)
		}
		result.Latency = lat
	}
	if !opts.SkipPortUsage {
		pu, err := c.PortUsage(in, result.Latency.MaxLatency())
		if err != nil {
			return nil, fmt.Errorf("core: measuring port usage of %s: %w", in.Name, err)
		}
		result.Ports = pu
	}
	if !opts.SkipThroughput {
		tp, err := c.Throughput(in, result.Ports)
		if err != nil {
			return nil, fmt.Errorf("core: measuring throughput of %s: %w", in.Name, err)
		}
		result.Throughput = tp
	}
	return result, nil
}

// CharacterizeAll characterizes every instruction variant of the target
// microarchitecture (or the subset named in opts.Only) and returns the
// aggregated results.
func (c *Characterizer) CharacterizeAll(opts Options) (*ArchResult, error) {
	if err := c.ensureBlocking(); err != nil {
		return nil, err
	}
	var instrs []*isa.Instr
	if len(opts.Only) > 0 {
		for _, name := range opts.Only {
			in, err := c.gen.lookupVariant(name)
			if err != nil {
				return nil, err
			}
			instrs = append(instrs, in)
		}
	} else {
		instrs = c.gen.set.Instrs()
	}
	out := NewArchResult(c.gen.arch.Name())
	for i, in := range instrs {
		res, err := c.characterizeInstr(in, opts)
		if err != nil {
			// Record the failure instead of aborting the whole run; a single
			// unmeasurable variant should not lose the rest.
			res = &InstrResult{Name: in.Name, Mnemonic: in.Mnemonic, Skipped: "error: " + err.Error()}
		}
		out.Results[in.Name] = res
		if opts.Progress != nil {
			opts.Progress(i+1, len(instrs), in.Name)
		}
	}
	return out, nil
}
