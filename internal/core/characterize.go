package core

import (
	"context"
	"fmt"
	"sync"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// Characterizer drives the characterization of a microarchitecture: it owns
// the measurement harness, the discovered blocking instructions and the
// per-instruction algorithms (port usage, latency, throughput).
type Characterizer struct {
	gen      *gen
	blocking *BlockingSet

	// Worker stacks are pooled rather than forked per run: a long-lived
	// Characterizer (the engine caches one per generation) hands warm
	// harness/machine pairs to successive parallel runs via acquireFork/
	// releaseFork, so simulator arenas, memoized perf descriptions, repeat
	// buffers and chain-latency caches survive across runs. poolChars maps a
	// pooled harness back to the fork Characterizer wrapped around it.
	poolMu    sync.Mutex
	pool      *measure.Pool
	poolChars map[*measure.Harness]*Characterizer
}

// New returns a Characterizer for the given measurement harness.
func New(h *measure.Harness) *Characterizer {
	return &Characterizer{gen: newGen(h)}
}

// NewForArch builds the full stack for a generation: simulator, measurement
// harness with the default configuration, and characterizer.
func NewForArch(arch *uarch.Arch) *Characterizer {
	m := pipesim.New(arch)
	return New(measure.New(m))
}

// Arch returns the target microarchitecture.
func (c *Characterizer) Arch() *uarch.Arch { return c.gen.arch }

// Harness returns the measurement harness in use.
func (c *Characterizer) Harness() *measure.Harness { return c.gen.h }

// Blocking returns the discovered blocking-instruction set, discovering it on
// first use.
func (c *Characterizer) Blocking() (*BlockingSet, error) {
	if err := c.ensureBlocking(); err != nil {
		return nil, err
	}
	return c.blocking, nil
}

// Options controls a whole-ISA characterization run.
type Options struct {
	// Only restricts the run to the named variants (all variants if empty).
	Only []string
	// SkipLatency, SkipPortUsage and SkipThroughput disable parts of the
	// characterization (e.g. for quick µop-count-only comparisons).
	SkipLatency    bool
	SkipPortUsage  bool
	SkipThroughput bool
	// Context, if non-nil, bounds the lifetime of the run: blocking-instruction
	// discovery checks it between candidates and the characterization
	// scheduler between variants, and the run returns ctx.Err() (wrapped)
	// instead of continuing to measure. Cancellation is how a long-running
	// server quiesces a characterization whose requesters are all gone; a
	// cancelled run returns no partial result.
	Context context.Context
	// Progress, if non-nil, is called after each instruction. With multiple
	// workers the callbacks are serialized and the done count remains
	// monotonically increasing, but the variant completion order depends on
	// scheduling.
	Progress func(done, total int, name string)
	// Variant, if non-nil, is called with each measured variant's record,
	// under the same serialization contract as Progress (and ordered before
	// the Progress callback of the same variant). Records already present in
	// a resume partial map are merged, not measured, and not reported here.
	// The record is the one placed in the returned ArchResult; callers must
	// treat it as read-only.
	Variant func(name string, rec *InstrResult)
	// Workers is the number of parallel characterization workers. Each worker
	// owns a complete simulator/harness/characterizer stack (the simulator is
	// stateful, so the run is sharded rather than locked); the merged result
	// is identical to a sequential run regardless of the worker count. 0 or 1
	// runs sequentially on the calling Characterizer; negative values select
	// DefaultWorkers(). Sharding requires a forkable runner (a
	// *pipesim.Machine or a measure.RunnerForker); with any other runner the
	// run silently falls back to the sequential path. The same worker count
	// also shards blocking-instruction discovery.
	Workers int
	// BlockingProgress, if non-nil, is called after each candidate during
	// blocking-instruction discovery, under the same serialization contract
	// as Progress.
	BlockingProgress func(done, total int, name string)
}

// skipReason classifies instructions that are not fully characterized,
// mirroring the limitations in Section 8 of the paper.
func skipReason(in *isa.Instr) string {
	switch {
	case in.IsSystem:
		return "system instruction"
	case in.IsSerializing:
		return "serializing instruction"
	case in.ControlFlow:
		return "control-flow instruction"
	case in.HasRep:
		return "REP prefix (variable µop count)"
	case in.HasLock:
		return "LOCK prefix"
	}
	return ""
}

// CharacterizeInstr fully characterizes a single instruction variant.
func (c *Characterizer) CharacterizeInstr(in *isa.Instr) (*InstrResult, error) {
	return c.characterizeInstr(in, Options{})
}

func (c *Characterizer) characterizeInstr(in *isa.Instr, opts Options) (*InstrResult, error) {
	result := &InstrResult{Name: in.Name, Mnemonic: in.Mnemonic}

	portUops, issued, err := c.MeasuredUops(in)
	if err != nil {
		return nil, fmt.Errorf("core: measuring µops of %s: %w", in.Name, err)
	}
	result.Uops = portUops
	result.UopsIssued = issued

	if reason := skipReason(in); reason != "" {
		result.Skipped = reason
		return result, nil
	}

	if !opts.SkipLatency {
		lat, err := c.Latency(in)
		if err != nil {
			return nil, fmt.Errorf("core: measuring latency of %s: %w", in.Name, err)
		}
		result.Latency = lat
	}
	if !opts.SkipPortUsage {
		pu, err := c.PortUsage(in, result.Latency.MaxLatency())
		if err != nil {
			return nil, fmt.Errorf("core: measuring port usage of %s: %w", in.Name, err)
		}
		result.Ports = pu
	}
	if !opts.SkipThroughput {
		tp, err := c.Throughput(in, result.Ports)
		if err != nil {
			return nil, fmt.Errorf("core: measuring throughput of %s: %w", in.Name, err)
		}
		result.Throughput = tp
	}
	return result, nil
}

// CharacterizeAll characterizes every instruction variant of the target
// microarchitecture (or the subset named in opts.Only) and returns the
// aggregated results. With opts.Workers > 1 the variants are sharded across
// that many independent characterization stacks (see scheduler.go); the
// blocking-instruction set is discovered once and shared read-only.
func (c *Characterizer) CharacterizeAll(opts Options) (*ArchResult, error) {
	return c.CharacterizeResume(opts, nil)
}

// CharacterizeResume is the partial-results entry point of the scheduler:
// it characterizes only the variants of the selection that are missing from
// partial (a map of variant name to an already-measured record, e.g. loaded
// from a persistent per-variant cache) and merges the partial records into
// the returned result. Because every variant's measurement is independent of
// stack history, a resumed run is identical to a cold run over the same
// selection. Partial entries outside the selection are ignored; the Progress
// callback counts only the variants actually measured. A nil or empty
// partial map degenerates to CharacterizeAll.
func (c *Characterizer) CharacterizeResume(opts Options, partial map[string]*InstrResult) (*ArchResult, error) {
	if err := runCancelled(opts.Context); err != nil {
		return nil, err
	}
	instrs, err := c.resolveInstrs(opts)
	if err != nil {
		return nil, err
	}
	missing := instrs
	if len(partial) > 0 {
		missing = missing[:0:0]
		for _, in := range instrs {
			// A partial record that names a different variant than the slot
			// it sits in cannot be trusted (a corrupted or mislabeled cache
			// read slipped through): the variant is re-measured instead of
			// being served under the wrong name.
			if rec := partial[in.Name]; rec == nil || rec.Name != in.Name {
				missing = append(missing, in)
			}
		}
	}
	out := NewArchResult(c.gen.arch.Name())
	if len(missing) > 0 {
		// Blocking discovery — the dominant sequential cost of a run — is
		// only needed when something is actually measured, so a fully
		// covered resume is a pure merge.
		if err := c.ensureBlockingWith(opts); err != nil {
			return nil, err
		}
		workers := opts.Workers
		if workers < 0 {
			workers = DefaultWorkers()
		}
		if workers > 1 && len(missing) > 1 {
			out, err = c.characterizeParallel(missing, opts, workers)
		} else {
			out, err = c.characterizeSequential(missing, opts)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, in := range instrs {
		if rec := partial[in.Name]; rec != nil && rec.Name == in.Name && out.Results[in.Name] == nil {
			out.Results[in.Name] = rec
		}
	}
	return out, nil
}
