package core

import (
	"fmt"
	"runtime"
	"testing"

	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// equalBlockingSets compares two blocking sets structurally (combination
// keys, selected instruction, ports, throughput), reporting differences via
// t.Errorf.
func equalBlockingSets(t *testing.T, label string, got, want *BlockingSet) {
	t.Helper()
	compare := func(kind string, got, want map[string]BlockingInstr) {
		if len(got) != len(want) {
			t.Errorf("%s: %s has %d combinations, want %d", label, kind, len(got), len(want))
		}
		for key, w := range want {
			g, ok := got[key]
			if !ok {
				t.Errorf("%s: %s is missing combination p%s", label, kind, key)
				continue
			}
			if g.Instr.Name != w.Instr.Name {
				t.Errorf("%s: %s p%s selected %s, want %s", label, kind, key, g.Instr.Name, w.Instr.Name)
			}
			if uarch.PortComboKey(g.Ports) != uarch.PortComboKey(w.Ports) {
				t.Errorf("%s: %s p%s ports %v, want %v", label, kind, key, g.Ports, w.Ports)
			}
			if g.Throughput != w.Throughput || g.UopsOnCombo != w.UopsOnCombo {
				t.Errorf("%s: %s p%s throughput/uops %v/%v, want %v/%v",
					label, kind, key, g.Throughput, g.UopsOnCombo, w.Throughput, w.UopsOnCombo)
			}
		}
	}
	compare("SSE", got.SSE, want.SSE)
	compare("AVX", got.AVX, want.AVX)
}

// TestBlockingDiscoveryWorkerInvariance is the determinism guarantee of the
// sharded blocking discovery: the discovered set must be identical to a
// sequential discovery for any worker count (1, 4, NumCPU).
func TestBlockingDiscoveryWorkerInvariance(t *testing.T) {
	arch := uarch.Get(uarch.Skylake)
	want, err := NewForArch(arch).DiscoverBlocking(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	workers := []int{4}
	if n := runtime.NumCPU(); n != 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		got, err := NewForArch(arch).DiscoverBlocking(Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		equalBlockingSets(t, fmt.Sprintf("workers=%d", w), got, want)
	}
}

// TestBlockingProgressContract checks the BlockingProgress callback under
// concurrent discovery: one callback per candidate, the done count
// monotonically increasing and ending at the total.
func TestBlockingProgressContract(t *testing.T) {
	c := NewForArch(uarch.Get(uarch.Nehalem))
	lastDone, total := 0, 0
	seen := make(map[string]int)
	_, err := c.DiscoverBlocking(Options{
		Workers: 4,
		BlockingProgress: func(done, tot int, name string) {
			// Serialized by the discovery, so plain variables are safe here.
			if done != lastDone+1 {
				t.Errorf("done jumped from %d to %d", lastDone, done)
			}
			lastDone, total = done, tot
			seen[name]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone == 0 || lastDone != total {
		t.Errorf("final done = %d, total = %d; want equal and positive", lastDone, total)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("candidate %s reported %d times", name, n)
		}
	}
}

// TestBlockingDiscoveryFallsBackForUnforkableRunner checks that parallel
// discovery on an unforkable runner silently degrades to the sequential path.
func TestBlockingDiscoveryFallsBackForUnforkableRunner(t *testing.T) {
	arch := uarch.Get(uarch.Skylake)
	c := New(measure.New(opaqueRunner{pipesim.New(arch)}))
	bs, err := c.DiscoverBlocking(Options{Workers: 4})
	if err != nil {
		t.Fatalf("discovery with an unforkable runner should fall back to sequential, got %v", err)
	}
	if len(bs.SSE) == 0 || len(bs.AVX) == 0 {
		t.Errorf("fallback discovery found no blocking instructions: %d SSE, %d AVX", len(bs.SSE), len(bs.AVX))
	}
}
