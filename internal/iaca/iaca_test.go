package iaca

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

func TestVersionSupportMatrix(t *testing.T) {
	// Fourth column of Table 1.
	cases := map[uarch.Generation]string{
		uarch.Nehalem:     "2.1-2.2",
		uarch.Westmere:    "2.1-2.2",
		uarch.SandyBridge: "2.1-2.3",
		uarch.IvyBridge:   "2.1-2.3",
		uarch.Haswell:     "2.1-3.0",
		uarch.Broadwell:   "2.2-3.0",
		uarch.Skylake:     "2.3-3.0",
		uarch.KabyLake:    "-",
		uarch.CoffeeLake:  "-",
	}
	for gen, want := range cases {
		if got := DescribeVersions(gen); got != want {
			t.Errorf("DescribeVersions(%s) = %q, want %q", gen, got, want)
		}
	}
	if Supports(V30, uarch.Nehalem) {
		t.Error("IACA 3.0 should not support Nehalem")
	}
	if !Supports(V21, uarch.Haswell) {
		t.Error("IACA 2.1 should support Haswell")
	}
}

func TestNewRejectsUnsupportedPairs(t *testing.T) {
	if _, err := New(V30, uarch.Get(uarch.KabyLake)); err == nil {
		t.Error("New accepted Kaby Lake, which no IACA version supports")
	}
	if _, err := New(V21, uarch.Get(uarch.Skylake)); err == nil {
		t.Error("New accepted IACA 2.1 on Skylake")
	}
}

func TestParseVersion(t *testing.T) {
	if v, err := ParseVersion("2.3"); err != nil || v != V23 {
		t.Errorf("ParseVersion(2.3) = %v, %v", v, err)
	}
	if _, err := ParseVersion("9.9"); err == nil {
		t.Error("ParseVersion accepted an unknown version")
	}
}

func TestInjectedDiscrepancies(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	hsw := uarch.Get(uarch.Haswell)
	nhm := uarch.Get(uarch.Nehalem)

	a30, err := New(V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	a23, err := New(V23, skl)
	if err != nil {
		t.Fatal(err)
	}

	// BSWAP_R32 on Skylake: reported with 2 µops although the hardware has 1.
	if e, _ := a30.Entry("BSWAP_R32"); e.Uops != 2 {
		t.Errorf("BSWAP_R32 IACA µops = %d, want 2", e.Uops)
	}
	truth := skl.Perf(skl.InstrSet().Lookup("BSWAP_R32"))
	if truth.NumUops() != 1 {
		t.Fatalf("ground truth for BSWAP_R32 changed: %d µops", truth.NumUops())
	}

	// VHADDPD: per-port detail does not add up to the total µop count.
	if e, _ := a30.Entry("VHADDPD_XMM_XMM_XMM"); e.Uops == sumUsage(e.Usage) {
		t.Errorf("VHADDPD detail sum %d should differ from total %d", sumUsage(e.Usage), e.Uops)
	}

	// VMINPS: 2.3 reports p015, 3.0 reports p01.
	e23, _ := a23.Entry("VMINPS_XMM_XMM_XMM")
	e30, _ := a30.Entry("VMINPS_XMM_XMM_XMM")
	if _, ok := e23.Usage["015"]; !ok {
		t.Errorf("IACA 2.3 VMINPS usage = %v, want a p015 entry", e23.Usage)
	}
	if _, ok := e30.Usage["01"]; !ok {
		t.Errorf("IACA 3.0 VMINPS usage = %v, want a p01 entry", e30.Usage)
	}

	// MOVQ2DQ on Skylake: both µops on port 5.
	if e, _ := a30.Entry("MOVQ2DQ_XMM_MM"); e.Usage["5"] != 2 {
		t.Errorf("MOVQ2DQ IACA usage = %v, want 2*p5", e.Usage)
	}

	// SAHF on Haswell: 2.1 correct (p06), 2.2 p0156.
	h21, err := New(V21, hsw)
	if err != nil {
		t.Fatal(err)
	}
	h22, err := New(V22, hsw)
	if err != nil {
		t.Fatal(err)
	}
	s21, _ := h21.Entry("SAHF")
	s22, _ := h22.Entry("SAHF")
	if _, ok := s21.Usage["06"]; !ok {
		t.Errorf("IACA 2.1 SAHF usage = %v, want p06", s21.Usage)
	}
	if _, ok := s22.Usage["0156"]; !ok {
		t.Errorf("IACA 2.2 SAHF usage = %v, want p0156", s22.Usage)
	}

	// MOVDQ2Q on Haswell: 2.1 correct, 2.2 wrong.
	m21, _ := h21.Entry("MOVDQ2Q_MM_XMM")
	m22, _ := h22.Entry("MOVDQ2Q_MM_XMM")
	if _, ok := m21.Usage["5"]; !ok {
		t.Errorf("IACA 2.1 MOVDQ2Q usage = %v, want to include p5", m21.Usage)
	}
	if _, ok := m22.Usage["01"]; !ok {
		t.Errorf("IACA 2.2 MOVDQ2Q usage = %v, want to include p01", m22.Usage)
	}

	// IMUL with memory on Nehalem: the load µop is missing.
	n21, err := New(V21, nhm)
	if err != nil {
		t.Fatal(err)
	}
	imul, _ := n21.Entry("IMUL_R64_M64")
	truthIMUL := nhm.Perf(nhm.InstrSet().Lookup("IMUL_R64_M64"))
	if imul.Uops >= truthIMUL.NumUops() {
		t.Errorf("IACA IMUL r64,m64 µops = %d, want fewer than the true %d", imul.Uops, truthIMUL.NumUops())
	}

	// TEST with memory on Nehalem: spurious store µops.
	test, _ := n21.Entry("TEST_M64_R64")
	truthTEST := nhm.Perf(nhm.InstrSet().Lookup("TEST_M64_R64"))
	if test.Uops <= truthTEST.NumUops() {
		t.Errorf("IACA TEST m64,r64 µops = %d, want more than the true %d", test.Uops, truthTEST.NumUops())
	}
}

func TestEntriesAreDeterministic(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	a1, err := New(V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range skl.InstrSet().Instrs() {
		e1, _ := a1.Entry(in.Name)
		e2, _ := a2.Entry(in.Name)
		if e1.Uops != e2.Uops || !UsageEqual(e1.Usage, e2.Usage) {
			t.Fatalf("entry for %s differs between two identical analyzers", in.Name)
		}
	}
}

func TestMostEntriesMatchGroundTruth(t *testing.T) {
	// The background error rate must stay small: the paper's Table 1 reports
	// µop agreement above 84% and port agreement above 91%.
	skl := uarch.Get(uarch.Skylake)
	a, err := New(V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	total, uopsMatch := 0, 0
	for _, in := range skl.InstrSet().Instrs() {
		if in.HasRep || in.HasLock {
			continue
		}
		e, ok := a.Entry(in.Name)
		if !ok {
			t.Fatalf("no entry for %s", in.Name)
		}
		total++
		if e.Uops == skl.Perf(in).NumUops() {
			uopsMatch++
		}
	}
	pct := 100 * float64(uopsMatch) / float64(total)
	if pct < 80 || pct > 99 {
		t.Errorf("µop agreement with ground truth = %.1f%%, want between 80%% and 99%%", pct)
	}
}

func TestAnalyzeIgnoresDependencies(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	a, err := New(V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	// CMC: predicted 0.25 cycles per iteration although the carry-flag
	// dependency makes 1 cycle the real limit (Section 7.2).
	cmc := skl.InstrSet().Lookup("CMC")
	rep, err := a.Analyze(asmgen.Sequence{asmgen.MustInst(cmc)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlockThroughput > 0.3 {
		t.Errorf("CMC block throughput = %.2f, want 0.25 (dependencies ignored)", rep.BlockThroughput)
	}
	// Store/load pair: predicted 1 cycle per iteration.
	store := skl.InstrSet().Lookup("MOV_M64_R64")
	load := skl.InstrSet().Lookup("MOV_R64_M64")
	pair := asmgen.Sequence{
		asmgen.MustInst(store, asmgen.MemOperand(isa.RAX, 0x1000), asmgen.RegOperand(isa.RBX)),
		asmgen.MustInst(load, asmgen.RegOperand(isa.RBX), asmgen.MemOperand(isa.RAX, 0x1000)),
	}
	repPair, err := a.Analyze(pair)
	if err != nil {
		t.Fatal(err)
	}
	if repPair.BlockThroughput > 1.2 {
		t.Errorf("store/load block throughput = %.2f, want about 1 (memory dependency ignored)", repPair.BlockThroughput)
	}
}

func TestAnalyzeLatencyOnlyIn21(t *testing.T) {
	hsw := uarch.Get(uarch.Haswell)
	add := hsw.InstrSet().Lookup("ADD_R64_R64")
	seq := asmgen.Sequence{asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX))}
	a21, _ := New(V21, hsw)
	a22, _ := New(V22, hsw)
	r21, err := a21.Analyze(seq)
	if err != nil {
		t.Fatal(err)
	}
	r22, err := a22.Analyze(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !r21.HasLatency {
		t.Error("IACA 2.1 should report latency")
	}
	if r22.HasLatency {
		t.Error("IACA 2.2 should not report latency (support dropped)")
	}
}

func TestAnalyzeRejectsUnknownInstruction(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	nhmOnly := uarch.Get(uarch.Skylake) // same arch, but fabricate a missing name by using a non-existent entry
	_ = nhmOnly
	a, _ := New(V30, skl)
	fake := &isa.Instr{Name: "FAKE_INSTR", Mnemonic: "FAKE",
		Operands: []isa.Operand{isa.RegOp("op1", isa.ClassGPR64, true, true)}}
	seq := asmgen.Sequence{asmgen.MustInst(fake, asmgen.RegOperand(isa.RAX))}
	if _, err := a.Analyze(seq); err == nil {
		t.Error("Analyze accepted an instruction that is not in the database")
	}
}

func TestRunAsMeasurementSubstrate(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	a, _ := New(V30, skl)
	add := skl.InstrSet().Lookup("ADD_R64_R64")
	var seq asmgen.Sequence
	for i := 0; i < 8; i++ {
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)))
	}
	c, err := a.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalUops < 8 {
		t.Errorf("Run reported %d µops, want at least 8", c.TotalUops)
	}
	if c.Cycles < 2 {
		t.Errorf("Run reported %d cycles, want at least 2 (front-end bound)", c.Cycles)
	}
	if a.Arch() != skl {
		t.Error("Arch() does not return the targeted architecture")
	}
}
