// Package iaca is a stand-in for Intel's Architecture Code Analyzer (IACA),
// the closed-source static analysis tool the paper compares its hardware
// measurements against (Sections 2.1, 6.3 and 7.2).
//
// Like the real tool, this analyzer has its own per-version instruction
// database that is decoupled from the actual hardware behaviour, analyzes a
// code sequence as the body of a loop while ignoring dependencies through
// status flags and memory, and reports block throughput and per-port
// pressure. The databases are derived from the simulator's ground truth with
// the discrepancies documented in the paper injected per version and
// generation (missing load µops, spurious store µops, BSWAP and VHADDPD
// anomalies, the SAHF and VMINPS version differences, MOVQ2DQ/MOVDQ2Q, and a
// deterministic background rate of small errors), so the agreement statistics
// of Table 1 and the case studies of Section 7.2/7.3 can be regenerated
// without the proprietary binary.
//
//uopslint:deterministic
package iaca

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/lp"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// Version identifies an IACA release.
type Version string

// The IACA versions considered by the paper.
const (
	V21 Version = "2.1"
	V22 Version = "2.2"
	V23 Version = "2.3"
	V30 Version = "3.0"
)

// AllVersions lists the modelled versions in release order.
var AllVersions = []Version{V21, V22, V23, V30}

// SupportedVersions returns the IACA versions that support a generation
// (fourth column of Table 1). Kaby Lake and Coffee Lake are not supported by
// any version.
func SupportedVersions(gen uarch.Generation) []Version {
	switch gen {
	case uarch.Nehalem, uarch.Westmere:
		return []Version{V21, V22}
	case uarch.SandyBridge, uarch.IvyBridge:
		return []Version{V21, V22, V23}
	case uarch.Haswell:
		return []Version{V21, V22, V23, V30}
	case uarch.Broadwell:
		return []Version{V22, V23, V30}
	case uarch.Skylake:
		return []Version{V23, V30}
	default:
		return nil
	}
}

// Supports reports whether the version supports the generation.
func Supports(v Version, gen uarch.Generation) bool {
	for _, sv := range SupportedVersions(gen) {
		if sv == v {
			return true
		}
	}
	return false
}

// Entry is one instruction's description in an IACA database.
type Entry struct {
	// Uops is the total µop count the tool reports.
	Uops int
	// Usage maps port-combination keys to µop counts (the per-port detail
	// view). Its sum can differ from Uops (the VHADDPD anomaly).
	Usage map[string]int
}

// UsageString renders the entry's port usage in the paper's notation.
func (e Entry) UsageString() string { return uarch.FormatPortUsage(e.Usage) }

// Report is the result of analyzing a code sequence as a loop body.
type Report struct {
	// BlockThroughput is the predicted cycles per loop iteration.
	BlockThroughput float64
	// PortPressure is the predicted µops per port per iteration.
	PortPressure []float64
	// TotalUops is the total µop count per iteration.
	TotalUops int
	// Latency is the predicted critical-path latency; only version 2.1
	// reports it (latency support was dropped in 2.2).
	Latency float64
	// HasLatency indicates whether Latency is populated.
	HasLatency bool
}

// Analyzer is one IACA version targeting one microarchitecture.
type Analyzer struct {
	version Version
	arch    *uarch.Arch
	db      map[string]Entry
}

// New builds the analyzer for a version/microarchitecture pair, or an error
// if the version does not support the generation.
func New(v Version, arch *uarch.Arch) (*Analyzer, error) {
	if !Supports(v, arch.Gen()) {
		return nil, fmt.Errorf("iaca: version %s does not support %s", v, arch.Name())
	}
	a := &Analyzer{version: v, arch: arch, db: make(map[string]Entry)}
	for _, in := range arch.InstrSet().Instrs() {
		a.db[in.Name] = a.buildEntry(in)
	}
	return a, nil
}

// Version returns the analyzer's IACA version.
func (a *Analyzer) Version() Version { return a.version }

// Arch returns the targeted microarchitecture.
func (a *Analyzer) Arch() *uarch.Arch { return a.arch }

// Entry returns the database entry for an instruction variant.
func (a *Analyzer) Entry(name string) (Entry, bool) {
	e, ok := a.db[name]
	return e, ok
}

// buildEntry derives the database entry for one variant: the ground truth
// plus the injected per-version discrepancies.
func (a *Analyzer) buildEntry(in *isa.Instr) Entry {
	perf := a.arch.Perf(in)
	usage := make(map[string]int)
	for k, n := range perf.PortUsage() {
		usage[k] = n
	}
	uops := len(perf.Uops)
	gen := a.arch.Gen()
	p := a.profileKeys()

	switch {
	// Missing load µops for some memory-reading instructions on Nehalem and
	// Westmere (e.g. IMUL, Section 7.2).
	case gen <= uarch.Westmere && in.ReadsMemory() && isLoadDropMnemonic(in.Mnemonic):
		removeOne(usage, p.load)
		uops--

	// Spurious store µops for TEST with a memory operand on Nehalem.
	case gen <= uarch.Westmere && in.Mnemonic == "TEST" && in.ReadsMemory():
		usage[p.storeData]++
		usage[p.storeAddr]++
		uops += 2

	// BSWAP: IACA does not distinguish the 32-bit and 64-bit variants on
	// Skylake; both get the 64-bit decomposition.
	case gen >= uarch.Skylake && in.Mnemonic == "BSWAP" && in.Operands[0].Width == 32:
		usage = map[string]int{p.shift: 1, p.intALU: 1}
		uops = 2

	// VHADDPD/VHADDPS on Skylake: the total µop count is right but the
	// per-port detail only shows one µop.
	case gen >= uarch.Skylake && (in.Mnemonic == "VHADDPD" || in.Mnemonic == "VHADDPS"):
		usage = map[string]int{p.fpAdd: 1}
		// uops stays at the correct total of 3.

	// VMINPS on Skylake: version 2.3 reports ports 0, 1 and 5; version 3.0
	// (and the hardware) reports ports 0 and 1.
	case gen >= uarch.Skylake && in.Mnemonic == "VMINPS" && a.version == V23:
		usage = map[string]int{"015": sumUsage(usage)}

	// SAHF on Haswell/Broadwell: correct (p06) in 2.1, p0156 in later
	// versions.
	case (gen == uarch.Haswell || gen == uarch.Broadwell) && in.Mnemonic == "SAHF" && a.version != V21:
		usage = map[string]int{p.intALU: 1}

	// MOVDQ2Q on Haswell/Broadwell: correct (1*p5+1*p015) in 2.1,
	// 1*p01+1*p015 in later versions.
	case (gen == uarch.Haswell || gen == uarch.Broadwell) && in.Mnemonic == "MOVDQ2Q" && a.version != V21:
		usage = map[string]int{"01": 1, "015": 1}

	// MOVQ2DQ on Skylake: both µops are reported on port 5 only.
	case gen >= uarch.Skylake && in.Mnemonic == "MOVQ2DQ":
		usage = map[string]int{"5": 2}

	// LOCK-prefixed instructions: the µop count differs systematically from
	// the hardware measurement (the paper excludes them from Table 1).
	case in.HasLock:
		uops -= 3
		if uops < 1 {
			uops = 1
		}

	// REP-prefixed instructions have a variable µop count on hardware; the
	// static tool reports a fixed small count.
	case in.HasRep:
		uops = 2
		usage = map[string]int{p.intALU: 2}
	}

	// Background error rate: a deterministic pseudo-random subset of
	// variants gets a µop count off by one, and a further subset gets one
	// µop's port binding changed. This reproduces the overall agreement
	// statistics of Table 1 without enumerating every real IACA bug. The
	// instructions named in the paper's case studies are exempt so that
	// their documented (mis)behaviour is exactly the injected one above.
	// The hash deliberately excludes the IACA version: like the real tool's
	// database errors, the background errors persist across versions (the
	// per-version differences come from the named cases above).
	h := entryHash(in.Name, int(gen))
	if !in.HasLock && !in.HasRep && !caseStudyMnemonics[in.Mnemonic] {
		if h%100 < 7 {
			usage[p.intALU]++
			uops++
		} else if h%100 >= 7 && h%100 < 11 {
			// Rebind one µop from the shuffle ports to the vector-logic
			// ports (or vice versa) if present.
			if usage[p.shuffle] > 0 {
				usage[p.shuffle]--
				if usage[p.shuffle] == 0 {
					delete(usage, p.shuffle)
				}
				usage[p.vecLogic]++
			} else if usage[p.intALU] > 0 {
				usage[p.intALU]--
				if usage[p.intALU] == 0 {
					delete(usage, p.intALU)
				}
				usage[p.shift]++
			}
		}
	}
	return Entry{Uops: uops, Usage: usage}
}

// profileKeys caches the port-combination keys of the targeted generation.
type profileKeysT struct {
	intALU, shift, shuffle, vecLogic, fpAdd, load, storeAddr, storeData string
}

func (a *Analyzer) profileKeys() profileKeysT {
	if a.arch.NumPorts() == 6 {
		return profileKeysT{
			intALU: "015", shift: "05", shuffle: "5", vecLogic: "015", fpAdd: "1",
			load:      uarch.PortComboKey(a.arch.LoadPorts()),
			storeAddr: uarch.PortComboKey(a.arch.StoreAddrPorts()),
			storeData: uarch.PortComboKey(a.arch.StoreDataPorts()),
		}
	}
	fpAdd := "1"
	if a.arch.Gen() >= uarch.Skylake {
		fpAdd = "01"
	}
	return profileKeysT{
		intALU: "0156", shift: "06", shuffle: "5", vecLogic: "015", fpAdd: fpAdd,
		load:      uarch.PortComboKey(a.arch.LoadPorts()),
		storeAddr: uarch.PortComboKey(a.arch.StoreAddrPorts()),
		storeData: uarch.PortComboKey(a.arch.StoreDataPorts()),
	}
}

// caseStudyMnemonics are exempt from the background error injection because
// the paper makes specific claims about how IACA reports them.
var caseStudyMnemonics = map[string]bool{
	"CMC": true, "MOV": true, "TEST": true, "ADD": true, "ADC": true, "IMUL": true,
	"BSWAP": true, "VHADDPD": true, "VHADDPS": true, "VMINPS": true, "SAHF": true,
	"MOVQ2DQ": true, "MOVDQ2Q": true, "SHLD": true, "SHRD": true, "PBLENDVB": true,
	"AESDEC": true, "AESDECLAST": true, "AESENC": true, "AESENCLAST": true,
	"PCMPGTB": true, "PCMPGTW": true, "PCMPGTD": true, "PCMPGTQ": true,
	"PSHUFD": true, "MOVSHDUP": true, "MOVSX": true,
}

func isLoadDropMnemonic(m string) bool {
	switch m {
	case "IMUL", "MUL", "CRC32", "POPCNT":
		return true
	}
	return false
}

func removeOne(usage map[string]int, key string) {
	if usage[key] > 0 {
		usage[key]--
		if usage[key] == 0 {
			delete(usage, key)
		}
	}
}

func sumUsage(usage map[string]int) int {
	n := 0
	for _, v := range usage {
		n += v
	}
	return n
}

func entryHash(parts ...interface{}) uint32 {
	h := fnv.New32a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return h.Sum32()
}

// Analyze treats the code sequence as the body of a loop and predicts its
// steady-state behaviour, ignoring dependencies through status flags and
// memory (which is why, e.g., CMC is predicted at 0.25 cycles per iteration
// and a store/load pair at 1 cycle, Section 7.2).
func (a *Analyzer) Analyze(code asmgen.Sequence) (Report, error) {
	numPorts := a.arch.NumPorts()
	var groups []lp.PortGroup
	total := 0
	latency := 0.0
	for _, inst := range code {
		e, ok := a.db[inst.Variant.Name]
		if !ok {
			return Report{}, fmt.Errorf("iaca %s: instruction %s not supported", a.version, inst.Variant.Name)
		}
		// Feed the scheduler in sorted-key order: it breaks assignment
		// ties by group position, so map iteration order would otherwise
		// reach the predicted port pressure.
		usageKeys := make([]string, 0, len(e.Usage))
		for key := range e.Usage {
			usageKeys = append(usageKeys, key)
		}
		sort.Strings(usageKeys)
		for _, key := range usageKeys {
			groups = append(groups, lp.PortGroup{Ports: portsOfKey(key), Count: float64(e.Usage[key])})
		}
		total += e.Uops
		latency += float64(maxInt(1, e.Uops))
	}
	tp, assign, err := lp.Schedule(groups, numPorts)
	if err != nil {
		return Report{}, err
	}
	// The front end issues four µops per cycle; the block throughput cannot
	// be below total/4.
	if fe := float64(total) / float64(a.arch.IssueWidth()); fe > tp {
		tp = fe
	}
	pressure := make([]float64, numPorts)
	for _, row := range assign {
		for p, v := range row {
			pressure[p] += v
		}
	}
	rep := Report{
		BlockThroughput: tp,
		PortPressure:    pressure,
		TotalUops:       total,
	}
	if a.version == V21 {
		rep.Latency = latency
		rep.HasLatency = true
	}
	return rep, nil
}

// Run makes the analyzer usable as an execution substrate for the
// measurement harness (the paper's "variant of our tool that runs the
// microbenchmarks on top of IACA", Section 6.3): the predicted block
// throughput becomes the cycle count and the predicted port pressure becomes
// the per-port µop counters.
func (a *Analyzer) Run(code asmgen.Sequence) (pipesim.Counters, error) {
	rep, err := a.Analyze(code)
	if err != nil {
		return pipesim.Counters{}, err
	}
	c := pipesim.Counters{
		Cycles:     int(math.Ceil(rep.BlockThroughput)),
		PortUops:   make([]int, a.arch.NumPorts()),
		TotalUops:  rep.TotalUops,
		IssuedUops: rep.TotalUops,
	}
	for p, v := range rep.PortPressure {
		c.PortUops[p] = int(v + 0.5)
	}
	return c, nil
}

func portsOfKey(key string) []int {
	var ports []int
	for _, ch := range key {
		if ch >= '0' && ch <= '9' {
			ports = append(ports, int(ch-'0'))
		}
	}
	return ports
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// UsageEqual compares two port usages for equality (integer µop counts per
// combination).
func UsageEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// DescribeVersions renders the supported-version range for a generation the
// way Table 1 does (e.g. "2.1-3.0"), or "-" if unsupported.
func DescribeVersions(gen uarch.Generation) string {
	vs := SupportedVersions(gen)
	if len(vs) == 0 {
		return "-"
	}
	if len(vs) == 1 {
		return string(vs[0])
	}
	return string(vs[0]) + "-" + string(vs[len(vs)-1])
}

// ParseVersion converts a version string to a Version.
func ParseVersion(s string) (Version, error) {
	for _, v := range AllVersions {
		if string(v) == s || strings.TrimPrefix(s, "v") == string(v) {
			return v, nil
		}
	}
	return "", fmt.Errorf("iaca: unknown version %q", s)
}
