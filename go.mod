module uopsinfo

go 1.21
