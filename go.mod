module uopsinfo

go 1.22
