GO ?= go

.PHONY: build test vet race bench bench-smoke fmt fmt-check ci ci-cmd ci-service run-uopsd

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every benchmark for a single iteration so they cannot
# bit-rot without CI noticing; it reports no meaningful timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci-cmd re-runs the command-level cache determinism tests (mixed warm/cold
# and incremental per-variant eviction) under the race detector and checks
# that the backend registry lists the default pipesim backend through the
# actual CLI surface.
ci-cmd:
	$(GO) test -race -run 'TestCacheColdWarmByteIdentical|TestCacheIncrementalEviction' ./cmd/uopsinfo
	$(GO) run ./cmd/uopsinfo -backends | grep -q '^pipesim' || \
		{ echo "uopsinfo -backends does not list pipesim"; exit 1; }

# run-uopsd starts the characterization service on its default address
# (localhost:8631) with a local cache directory, the quickest way to poke the
# HTTP API by hand.
run-uopsd:
	$(GO) run ./cmd/uopsd -cache .uopsd-cache -v

# ci-service gates the HTTP characterization service under the race
# detector: the endpoint suite (including the deterministic coalescing
# storm), then the end-to-end test that binds the real uopsd server to an
# ephemeral port, fires concurrent identical requests and asserts via
# /v1/stats that exactly one measurement run served them all.
ci-service:
	$(GO) test -race -count=1 ./internal/service
	$(GO) test -race -count=1 -run 'TestUopsd' ./cmd/uopsd

# ci is the gate for every change: formatting and static checks, the full
# test suite under the race detector (the characterization scheduler, the
# engine and the service are concurrent), a one-iteration pass over every
# benchmark, and the command-level cache/backend/service checks.
ci: fmt-check vet race bench-smoke ci-cmd ci-service
