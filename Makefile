GO ?= go

# COUNT is plumbed into every benchmark run (go test -count). benchstat wants
# >= 10 samples: `make bench COUNT=10 > new.txt` produces input it accepts
# directly, and `make bench-compare OLD=old.txt NEW=new.txt` diffs two such
# files.
COUNT ?= 1

# BENCH_LABEL names the column that `make bench-json` records the current
# numbers under in BENCH_pipesim.json (e.g. pr5-before, pr5-after).
BENCH_LABEL ?= current

.PHONY: build test vet race bench bench-smoke bench-json bench-json-smoke \
	bench-compare fmt fmt-check ci ci-cmd ci-service run-uopsd

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(COUNT) ./...

# bench-smoke runs every benchmark for a single iteration so they cannot
# bit-rot without CI noticing; it reports no meaningful timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json records the perf trajectory: the simulator and LP hot-path
# benchmarks at full fidelity plus the end-to-end characterization benchmarks
# (bounded to 2 iterations — they run whole sampled ISA characterizations),
# parsed into BENCH_pipesim.json under $(BENCH_LABEL). Existing labels in the
# file are preserved, so successive PRs accumulate comparable columns.
# (The benchmarks write to a temp file first so a failing/panicking
# benchmark run aborts the recipe instead of recording a partial label.)
bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(COUNT) ./internal/pipesim ./internal/lp > "$$tmp"; \
	$(GO) test -run='^$$' -bench='BenchmarkCharacterize|BenchmarkBlockingDiscovery' -benchmem -benchtime=2x . >> "$$tmp"; \
	cat "$$tmp"; \
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -o BENCH_pipesim.json < "$$tmp"

# bench-json-smoke is the CI gate for the trajectory pipeline: one iteration
# of the hot-path benchmarks piped through the parser, output discarded — it
# proves the pipeline parses real benchmark output without spending CI time
# on meaningful timings.
bench-json-smoke:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./internal/pipesim ./internal/lp > "$$tmp"; \
	$(GO) run ./cmd/benchjson -label smoke -o - < "$$tmp" >/dev/null

# bench-compare diffs two saved benchmark outputs (`make bench > old.txt`).
# benchstat is used when installed; otherwise the built-in comparator prints
# per-benchmark speedups.
bench-compare:
	@if [ -z "$(OLD)" ] || [ -z "$(NEW)" ]; then \
		echo "usage: make bench-compare OLD=old.txt NEW=new.txt"; exit 2; fi
	@if command -v benchstat >/dev/null 2>&1; then benchstat $(OLD) $(NEW); \
	else $(GO) run ./cmd/benchjson -compare $(OLD) $(NEW); fi

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci-cmd re-runs the command-level cache determinism tests (mixed warm/cold
# and incremental per-variant eviction) under the race detector and checks
# that the backend registry lists the default pipesim backend through the
# actual CLI surface.
ci-cmd:
	$(GO) test -race -run 'TestCacheColdWarmByteIdentical|TestCacheIncrementalEviction' ./cmd/uopsinfo
	$(GO) run ./cmd/uopsinfo -backends | grep -q '^pipesim' || \
		{ echo "uopsinfo -backends does not list pipesim"; exit 1; }

# run-uopsd starts the characterization service on its default address
# (localhost:8631) with a local cache directory, the quickest way to poke the
# HTTP API by hand.
run-uopsd:
	$(GO) run ./cmd/uopsd -cache .uopsd-cache -v

# ci-service gates the HTTP characterization service under the race
# detector: the endpoint suite (the deterministic coalescing storm, the
# async-job lifecycle/coalescing/TTL tests, conditional GETs, rate limiting,
# and the panic/format/client-gone regressions), then the end-to-end
# TestUopsd* suite that binds the real uopsd server to an ephemeral port —
# coalescing storm, jobs end to end, rate-limit flags, and shutdown with a
# job still measuring.
ci-service:
	$(GO) test -race -count=1 ./internal/service
	$(GO) test -race -count=1 -run 'TestUopsd' ./cmd/uopsd

# ci is the gate for every change: formatting and static checks, the full
# test suite under the race detector (the characterization scheduler, the
# engine and the service are concurrent), a one-iteration pass over every
# benchmark, the benchmark-trajectory pipeline smoke, and the command-level
# cache/backend/service checks.
ci: fmt-check vet race bench-smoke bench-json-smoke ci-cmd ci-service
