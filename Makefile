GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# ci is the gate for every change: static checks plus the full test suite
# under the race detector (the characterization scheduler is concurrent).
ci: vet race
