GO ?= go

# COUNT is plumbed into every benchmark run (go test -count). benchstat wants
# >= 10 samples: `make bench COUNT=10 > new.txt` produces input it accepts
# directly, and `make bench-compare OLD=old.txt NEW=new.txt` diffs two such
# files.
COUNT ?= 1

# BENCH_LABEL names the column that `make bench-json` records the current
# numbers under in BENCH_pipesim.json (e.g. pr5-before, pr5-after).
BENCH_LABEL ?= current

# BENCH_GUARD_PCT is the ns/op regression tolerance (percent) that
# bench-guard enforces on the hot Run* benchmarks.
BENCH_GUARD_PCT ?= 30

.PHONY: build test vet race bench bench-smoke bench-json bench-json-smoke \
	bench-compare bench-guard fmt fmt-check lint lint-extra ci ci-cmd \
	ci-service ci-fleet ci-faults run-uopsd

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(COUNT) ./...

# bench-smoke runs every benchmark for a single iteration so they cannot
# bit-rot without CI noticing; it reports no meaningful timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json records the perf trajectory: the simulator and LP hot-path
# benchmarks at full fidelity plus the end-to-end characterization benchmarks
# (bounded to 2 iterations — they run whole sampled ISA characterizations),
# parsed into BENCH_pipesim.json under $(BENCH_LABEL). Existing labels in the
# file are preserved, so successive PRs accumulate comparable columns.
# (The benchmarks write to a temp file first so a failing/panicking
# benchmark run aborts the recipe instead of recording a partial label.)
bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(COUNT) ./internal/pipesim ./internal/lp > "$$tmp"; \
	$(GO) test -run='^$$' -bench='BenchmarkCharacterize|BenchmarkBlockingDiscovery' -benchmem -benchtime=2x . >> "$$tmp"; \
	cat "$$tmp"; \
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -o BENCH_pipesim.json < "$$tmp"

# bench-json-smoke is the CI gate for the trajectory pipeline: one iteration
# of the hot-path benchmarks piped through the parser, output discarded — it
# proves the pipeline parses real benchmark output without spending CI time
# on meaningful timings.
bench-json-smoke:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./internal/pipesim ./internal/lp > "$$tmp"; \
	$(GO) run ./cmd/benchjson -label smoke -o - < "$$tmp" >/dev/null

# bench-compare diffs two saved benchmark outputs (`make bench > old.txt`).
# benchstat is used when installed; otherwise the built-in comparator prints
# per-benchmark speedups.
bench-compare:
	@if [ -z "$(OLD)" ] || [ -z "$(NEW)" ]; then \
		echo "usage: make bench-compare OLD=old.txt NEW=new.txt"; exit 2; fi
	@if command -v benchstat >/dev/null 2>&1; then benchstat $(OLD) $(NEW); \
	else $(GO) run ./cmd/benchjson -compare $(OLD) $(NEW); fi

# bench-guard is the ns/op regression gate on the hot simulator benchmarks
# (the Run* shapes — the per-Run cost every characterization pays thousands of
# times). With OLD=/NEW= it gates two saved bench outputs directly; otherwise
# it benchmarks the working tree's internal/pipesim against the same
# benchmarks built from HEAD in a temporary git worktree, and fails if any
# benchmark present in both regresses more than BENCH_GUARD_PCT percent
# (averaged over -count=3 to damp scheduler noise; benchmarks that exist only
# on one side cannot regress and are reported but not gated). A tree whose
# internal/pipesim matches HEAD passes immediately without benchmarking, so
# the gate costs clean CI checkouts nothing.
bench-guard:
	@set -e; \
	if [ -n "$(OLD)" ] && [ -n "$(NEW)" ]; then \
		exec $(GO) run ./cmd/benchjson -compare -fail-above=$(BENCH_GUARD_PCT) $(OLD) $(NEW); fi; \
	if git diff --quiet HEAD -- internal/pipesim 2>/dev/null; then \
		echo "bench-guard: internal/pipesim unchanged vs HEAD; nothing to gate"; exit 0; fi; \
	tmp=$$(mktemp -d); \
	trap 'git worktree remove --force "$$tmp/head" >/dev/null 2>&1; rm -rf "$$tmp"' EXIT; \
	git worktree add --detach "$$tmp/head" HEAD >/dev/null 2>&1; \
	echo "bench-guard: benchmarking HEAD..."; \
	( cd "$$tmp/head" && $(GO) test -run='^$$' -bench='BenchmarkRun' -count=3 -benchtime=0.3s ./internal/pipesim ) > "$$tmp/old.txt"; \
	echo "bench-guard: benchmarking working tree..."; \
	$(GO) test -run='^$$' -bench='BenchmarkRun' -count=3 -benchtime=0.3s ./internal/pipesim > "$$tmp/new.txt"; \
	$(GO) run ./cmd/benchjson -compare -fail-above=$(BENCH_GUARD_PCT) "$$tmp/old.txt" "$$tmp/new.txt"

# fmt and fmt-check skip testdata trees: analyzer fixtures under
# internal/analysis/**/testdata are lint inputs whose exact layout (including
# deliberately odd formatting) is part of the test, not repository style.
# go build/vet/test skip testdata directories on their own.
fmt:
	find . -name '*.go' -not -path '*/testdata/*' -exec gofmt -l -w {} +

fmt-check:
	@out="$$(find . -name '*.go' -not -path '*/testdata/*' -exec gofmt -l {} +)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repository's own static-analysis suite (cmd/uopslint): the
# five analyzers that machine-check the determinism, arena and concurrency
# invariants. A clean tree is also asserted by the meta-test in
# internal/analysis/uopslint, so `make race` fails on findings too; this
# target is the fast, direct way to see them.
lint:
	$(GO) run ./cmd/uopslint ./...

# lint-extra runs third-party linters when they are installed. The container
# images this repo builds in do not ship them (and cannot fetch them), so
# each tool is skipped with a notice when absent instead of failing.
lint-extra:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint-extra: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint-extra: govulncheck not installed; skipping"; fi

# ci-cmd re-runs the command-level cache determinism tests (mixed warm/cold
# and incremental per-variant eviction) under the race detector and checks
# that the backend registry lists the default pipesim backend through the
# actual CLI surface.
ci-cmd:
	$(GO) test -race -run 'TestCacheColdWarmByteIdentical|TestCacheIncrementalEviction' ./cmd/uopsinfo
	$(GO) run ./cmd/uopsinfo -backends | grep -q '^pipesim' || \
		{ echo "uopsinfo -backends does not list pipesim"; exit 1; }

# run-uopsd starts the characterization service on its default address
# (localhost:8631) with a local cache directory, the quickest way to poke the
# HTTP API by hand.
run-uopsd:
	$(GO) run ./cmd/uopsd -cache .uopsd-cache -v

# ci-service gates the HTTP characterization service under the race
# detector: the endpoint suite (the deterministic coalescing storm, the
# async-job lifecycle/coalescing/TTL tests, conditional GETs, rate limiting,
# and the panic/format/client-gone regressions), then the end-to-end
# TestUopsd* suite that binds the real uopsd server to an ephemeral port —
# coalescing storm, jobs end to end, rate-limit flags, and shutdown with a
# job still measuring.
ci-service:
	$(GO) test -race -count=1 ./internal/service
	$(GO) test -race -count=1 -run 'TestUopsd' ./cmd/uopsd

# ci-fleet gates the distributed measurement fleet under the race detector:
# the remote backend's unit suite (wire roundtrip, handshake, dedup,
# retry/hedge/timeout machinery against canned workers), the loopback
# end-to-end tests — XML byte-identical to a local run through 1/2/3 real
# workers, recovery from a worker killed mid-run, a mixed-fingerprint fleet
# refused at startup, fleet counters in /v1/stats and /metrics — and the
# -fleet flag through the uopsinfo CLI and a uopsd front tier.
ci-fleet:
	$(GO) test -race -count=1 ./internal/measure/remote
	$(GO) test -race -count=1 -run 'TestFleet|TestMeasureEndpoint' ./internal/service
	$(GO) test -race -count=1 -run 'TestFleetFlagMatchesLocal' ./cmd/uopsinfo
	$(GO) test -race -count=1 -run 'TestUopsdFleetFrontTier' ./cmd/uopsd

# ci-faults forces every durability claim the store makes through the
# fault-injecting filesystem (internal/store/errfs) under the race detector:
# torn writes, ENOSPC mid-save, writers killed between temp-write, fsync and
# rename, crashes at every step of segment compaction, budget-driven
# eviction, degradation to read-only/compute-only and probe-driven recovery —
# plus the engine plumbing (byte-identical XML under a byte budget and
# against a dead store) and the /healthz + /metrics degradation surface.
ci-faults:
	$(GO) test -race -count=1 ./internal/store
	$(GO) test -race -count=1 -run 'TestBudgetedStore|TestCrashedStore|TestEngineStatsExposeStoreLifecycle' ./internal/engine
	$(GO) test -race -count=1 -run 'TestHealthzReportsDegradedStore|TestMetricsExposeStoreLifecycle|TestMetricsWithoutStore' ./internal/service

# ci is the gate for every change: formatting and static checks (vet plus
# the repository's own uopslint suite), the full test suite under the race
# detector (the characterization scheduler, the engine and the service are
# concurrent), a one-iteration pass over every benchmark, the
# benchmark-trajectory pipeline smoke, the hot-path ns/op regression gate,
# the command-level cache/backend/service checks, the distributed-fleet
# suite, and the store fault-injection suite.
ci: fmt-check vet lint race bench-smoke bench-json-smoke bench-guard ci-cmd ci-service ci-fleet ci-faults
