// Command casestudies regenerates the case studies of Sections 5.1, 5.3.2,
// 7.2 and 7.3 of the paper: the motivating port-usage examples, the
// LP-computed throughput, the IACA discrepancies, the AESDEC and SHLD
// latencies, the MOVQ2DQ/MOVDQ2Q port usage, the multi-latency instructions
// and the dependency-breaking idioms.
//
// Usage:
//
//	casestudies [-id 7.3.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"uopsinfo/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casestudies: ")

	id := flag.String("id", "", `run only the case study with this identifier (e.g. "7.3.1"); default: all`)
	flag.Parse()

	ctx := report.NewContext()
	studies, err := report.AllCaseStudies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, cs := range studies {
		if *id != "" && cs.ID != *id {
			continue
		}
		fmt.Println(cs.Format())
		printed++
	}
	if printed == 0 {
		log.Fatalf("no case study with id %q", *id)
	}
}
