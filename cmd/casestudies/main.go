// Command casestudies regenerates the case studies of Sections 5.1, 5.3.2,
// 7.2 and 7.3 of the paper: the motivating port-usage examples, the
// LP-computed throughput, the IACA discrepancies, the AESDEC and SHLD
// latencies, the MOVQ2DQ/MOVDQ2Q port usage, the multi-latency instructions
// and the dependency-breaking idioms.
//
// Usage:
//
//	casestudies [-id 7.3.1] [-j 8] [-cache DIR] [-backend pipesim]
//
// With -j > 1 the per-generation characterizers (whose
// blocking-instruction discovery dominates the runtime) are built
// concurrently by the characterization engine; -cache reuses blocking sets
// across invocations, and -backend selects the measurement backend. Every
// stack is built through the engine, which rejects unknown generations and
// backends with an error instead of panicking.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/report"
	"uopsinfo/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casestudies: ")

	id := flag.String("id", "", `run only the case study with this identifier (e.g. "7.3.1"); default: all`)
	jobs := flag.Int("j", runtime.NumCPU(), "total number of parallel workers (1 = fully sequential)")
	cacheDir := flag.String("cache", "", "directory of the persistent result store")
	storeMaxBytes := flag.String("store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	storeMaxFiles := flag.Int64("store-max-files", 0, "file-count budget of the persistent store (0: unbounded)")
	storeDurable := flag.Bool("store-durable", false, "fsync store writes before publishing them (one-shot runs default to off)")
	backend := flag.String("backend", "", "measurement backend to run on (default: pipesim)")
	fleet := flag.String("fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	flag.Parse()

	resolvedBackend, err := remote.Setup(*fleet, *backend)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := engine.Config{
		Workers: *jobs, CacheDir: *cacheDir, Backend: resolvedBackend,
		StoreMaxFiles: *storeMaxFiles, StoreDurable: *storeDurable,
	}
	if *storeMaxBytes != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(*storeMaxBytes); err != nil {
			log.Fatalf("-store-max-bytes: %v", err)
		}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := report.NewContextWith(eng)
	if *jobs > 1 {
		// All studies are built regardless of -id (the filter applies to the
		// output), so warm every generation they measure on up front.
		if err := ctx.Prewarm(report.CaseStudyGenerations()); err != nil {
			log.Fatal(err)
		}
	}
	studies, err := report.AllCaseStudies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, cs := range studies {
		if *id != "" && cs.ID != *id {
			continue
		}
		fmt.Println(cs.Format())
		printed++
	}
	if printed == 0 {
		log.Fatalf("no case study with id %q", *id)
	}
}
