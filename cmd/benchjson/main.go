// Command benchjson converts `go test -bench` text output into the
// repository's benchmark-trajectory JSON (BENCH_pipesim.json) and compares
// two benchmark runs.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -label pr5-after -o BENCH_pipesim.json
//	benchjson -compare old.txt new.txt
//
// In conversion mode, stdin is parsed and the results are merged into the
// output file under the given label: existing labels are preserved, so the
// file accumulates a trajectory of measurements (e.g. "pr5-before",
// "pr5-after") that future PRs extend and diff against. `-o -` writes the
// merged document to stdout without touching any file.
//
// In comparison mode, the two arguments are benchmark text files (as saved
// from `make bench > old.txt`); each benchmark present in both is printed
// with its old and new ns/op and the speedup factor. With -fail-above=N the
// command additionally exits nonzero when any benchmark's new ns/op exceeds
// its old value by more than N percent, which is what `make bench-guard`
// uses as a CI regression gate. benchstat, if installed, gives statistically
// sounder output; this mode is the zero-dependency fallback used by
// `make bench-compare`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is the recorded measurement for one benchmark.
type Entry struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Document is the schema of BENCH_pipesim.json: a free-form note plus one
// benchmark table per label.
type Document struct {
	Note   string                      `json:"note,omitempty"`
	Labels map[string]map[string]Entry `json:"labels"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkRunIndependentALU-8   15381   79749 ns/op   76 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// cpuSuffix is the "-<GOMAXPROCS>" that go test appends to benchmark names
// when GOMAXPROCS > 1. It cannot be stripped per-line: a sub-benchmark named
// "parallel-2" would collide with "parallel-4". stripCommonCPUSuffix removes
// it only when every parsed name carries the same trailing "-N" — a
// heuristic that misfires on a GOMAXPROCS=1 run filtered to benchmarks that
// all happen to end in the same "-N" sub-benchmark suffix; the -cpusuffix
// flag (keep/strip) overrides it for such runs.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func stripCommonCPUSuffix(in map[string]Entry) map[string]Entry {
	common := ""
	for name := range in {
		s := cpuSuffix.FindString(name)
		if s == "" || (common != "" && s != common) {
			return in
		}
		common = s
	}
	if common == "" {
		return in
	}
	out := make(map[string]Entry, len(in))
	for name, e := range in {
		out[strings.TrimSuffix(name, common)] = e
	}
	return out
}

// parseBench reads benchmark text output and returns name → entry. A
// benchmark appearing on several lines (go test -count=N) is averaged over
// its samples, with the sample count recorded as the "samples" extra.
func parseBench(r io.Reader, suffixMode string) (map[string]Entry, error) {
	out := make(map[string]Entry)
	samples := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := out[m[1]]
		fields := strings.Fields(m[2])
		// Metrics come in "<value> <unit>" pairs after the iteration count.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsOp += v
			case "B/op":
				e.BOp += v
			case "allocs/op":
				e.AllocsOp += v
			default:
				if e.Extra == nil {
					e.Extra = make(map[string]float64)
				}
				e.Extra[unit] += v
			}
		}
		out[m[1]] = e
		samples[m[1]]++
	}
	for name, e := range out {
		if n := samples[name]; n > 1 {
			e.NsOp /= n
			e.BOp /= n
			e.AllocsOp /= n
			for unit, v := range e.Extra {
				e.Extra[unit] = v / n
			}
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra["samples"] = n
			out[name] = e
		}
	}
	switch suffixMode {
	case "keep":
	case "strip":
		stripped := make(map[string]Entry, len(out))
		for name, e := range out {
			stripped[cpuSuffix.ReplaceAllString(name, "")] = e
		}
		if len(stripped) == len(out) {
			out = stripped
		} // a collision means the trailing -N was not a cpu suffix: keep raw
	default: // auto
		out = stripCommonCPUSuffix(out)
	}
	return out, sc.Err()
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func convert(label, outPath, note, suffixMode string) error {
	parsed, err := parseBench(os.Stdin, suffixMode)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	doc := Document{Labels: map[string]map[string]Entry{}}
	if outPath != "-" {
		switch data, err := os.ReadFile(outPath); {
		case err == nil:
			if err := json.Unmarshal(data, &doc); err != nil {
				return fmt.Errorf("existing %s is not benchjson output: %w", outPath, err)
			}
			if doc.Labels == nil {
				doc.Labels = map[string]map[string]Entry{}
			}
		case !os.IsNotExist(err):
			// A transient read failure must not wipe the accumulated
			// trajectory on the subsequent write.
			return err
		}
	}
	if note != "" {
		doc.Note = note
	}
	doc.Labels[label] = parsed
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks under label %q to %s\n",
		len(parsed), label, outPath)
	return nil
}

// regression is one benchmark whose new ns/op exceeds the -fail-above
// tolerance over its old ns/op.
type regression struct {
	name    string
	oldNs   float64
	newNs   float64
	overPct float64
}

func compare(oldPath, newPath, suffixMode string, failAbove float64) error {
	readFile := func(path string) (map[string]Entry, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f, suffixMode)
	}
	oldB, err := readFile(oldPath)
	if err != nil {
		return err
	}
	newB, err := readFile(newPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-45s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "allocs")
	var oldOnly, newOnly []string
	var regressions []regression
	for _, name := range sortedNames(oldB) {
		o := oldB[name]
		n, ok := newB[name]
		if !ok {
			oldOnly = append(oldOnly, name)
			continue
		}
		speedup := "-"
		if n.NsOp > 0 {
			speedup = fmt.Sprintf("%.2fx", o.NsOp/n.NsOp)
		}
		if failAbove >= 0 && o.NsOp > 0 {
			if over := (n.NsOp/o.NsOp - 1) * 100; over > failAbove {
				regressions = append(regressions, regression{name: name, oldNs: o.NsOp, newNs: n.NsOp, overPct: over})
			}
		}
		allocs := fmt.Sprintf("%.0f→%.0f", o.AllocsOp, n.AllocsOp)
		fmt.Fprintf(w, "%-45s %14.0f %14.0f %9s %9s\n", name, o.NsOp, n.NsOp, speedup, allocs)
	}
	for _, name := range sortedNames(newB) {
		if _, ok := oldB[name]; !ok {
			newOnly = append(newOnly, name)
		}
	}
	// One-sided benchmarks (added, removed or renamed) must not vanish
	// silently from the comparison.
	for _, name := range oldOnly {
		fmt.Fprintf(w, "%-45s %14.0f %14s\n", name, oldB[name].NsOp, "(only in old)")
	}
	for _, name := range newOnly {
		fmt.Fprintf(w, "%-45s %14s %14.0f\n", name, "(only in new)", newB[name].NsOp)
	}
	if len(regressions) > 0 {
		w.Flush()
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f -> %.0f ns/op (+%.1f%%, tolerance %.1f%%)\n",
				r.name, r.oldNs, r.newNs, r.overPct, failAbove)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.1f%%", len(regressions), failAbove)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	label := flag.String("label", "current", "label to record this run under")
	out := flag.String("o", "BENCH_pipesim.json", `output JSON file ("-" for stdout, merged with existing labels otherwise)`)
	note := flag.String("note", "", "replace the document note")
	doCompare := flag.Bool("compare", false, "compare two benchmark text files instead of converting stdin")
	failAbove := flag.Float64("fail-above", -1,
		"with -compare: exit nonzero if any benchmark's new ns/op regresses more than this percentage over old (negative disables)")
	suffixMode := flag.String("cpusuffix", "auto",
		`handling of the trailing "-GOMAXPROCS" in benchmark names: auto (strip when uniform), keep, strip`)
	flag.Parse()

	var err error
	if *doCompare {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -compare [-fail-above=N] OLD.txt NEW.txt")
		}
		err = compare(flag.Arg(0), flag.Arg(1), *suffixMode, *failAbove)
	} else {
		err = convert(*label, *out, *note, *suffixMode)
	}
	if err != nil {
		log.Fatal(err)
	}
}
