package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: uopsinfo/internal/pipesim
BenchmarkRunIndependentALU   	   15381	     79749 ns/op	      76 B/op	       1 allocs/op
BenchmarkCharacterizeAll/serial         	       2	 118720127 ns/op	        69.00 variants	 2526828 B/op	   27068 allocs/op
PASS
ok  	uopsinfo/internal/pipesim	5.841s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample), "auto")
	if err != nil {
		t.Fatal(err)
	}
	alu, ok := got["BenchmarkRunIndependentALU"]
	if !ok {
		t.Fatalf("missing ALU benchmark; got %v", got)
	}
	if alu.NsOp != 79749 || alu.BOp != 76 || alu.AllocsOp != 1 {
		t.Errorf("ALU entry = %+v", alu)
	}
	all, ok := got["BenchmarkCharacterizeAll/serial"]
	if !ok {
		t.Fatalf("missing sub-benchmark; got %v", got)
	}
	if all.Extra["variants"] != 69 {
		t.Errorf("extra metric not captured: %+v", all)
	}
}

func TestParseBenchAveragesCountedSamples(t *testing.T) {
	// go test -count=3 emits every benchmark three times; the recorded
	// entry must be the mean, not the last sample.
	text := `BenchmarkFoo   10   100 ns/op   8 B/op   1 allocs/op
BenchmarkFoo   10   200 ns/op   8 B/op   1 allocs/op
BenchmarkFoo   10   300 ns/op   8 B/op   1 allocs/op
`
	got, err := parseBench(strings.NewReader(text), "auto")
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkFoo"]
	if e.NsOp != 200 || e.BOp != 8 || e.AllocsOp != 1 {
		t.Errorf("averaged entry = %+v, want ns_op=200 b_op=8 allocs_op=1", e)
	}
	if e.Extra["samples"] != 3 {
		t.Errorf("sample count not recorded: %+v", e)
	}
}

func TestParseBenchCPUSuffix(t *testing.T) {
	// A uniform trailing "-8" is the GOMAXPROCS marker and is stripped.
	uniform := `BenchmarkFoo-8   10   100 ns/op
BenchmarkBar/parallel-2-8   10   200 ns/op
`
	got, err := parseBench(strings.NewReader(uniform), "auto")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkFoo"]; !ok {
		t.Errorf("uniform cpu suffix not stripped: %v", got)
	}
	if _, ok := got["BenchmarkBar/parallel-2"]; !ok {
		t.Errorf("sub-benchmark -2 must survive suffix stripping: %v", got)
	}

	// Mixed trailing digits (GOMAXPROCS=1 output with -N sub-benchmarks)
	// must not be stripped, or parallel-2 and parallel-4 would collide.
	mixed := `BenchmarkBar/parallel-2   10   200 ns/op
BenchmarkBar/parallel-4   10   300 ns/op
`
	got, err = parseBench(strings.NewReader(mixed), "auto")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("parallel-2/parallel-4 collided: %v", got)
	}
}

func TestConvertMergesLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")

	feed := func(label, text string) {
		t.Helper()
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		origStdin := os.Stdin
		os.Stdin = r
		defer func() { os.Stdin = origStdin }()
		if _, err := w.WriteString(text); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := convert(label, out, "", "auto"); err != nil {
			t.Fatal(err)
		}
	}
	feed("before", sample)
	feed("after", strings.ReplaceAll(sample, "79749", "39000"))

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Labels["before"]["BenchmarkRunIndependentALU"].NsOp != 79749 {
		t.Errorf("label %q was not preserved across merges: %+v", "before", doc.Labels)
	}
	if doc.Labels["after"]["BenchmarkRunIndependentALU"].NsOp != 39000 {
		t.Errorf("label %q not recorded: %+v", "after", doc.Labels)
	}
}

func TestParseBenchSuffixModes(t *testing.T) {
	// GOMAXPROCS=1 output filtered to names all ending in "-2": auto would
	// misread the uniform "-2" as a cpu suffix; -cpusuffix=keep preserves it.
	text := `BenchmarkBar/parallel-2   10   200 ns/op
BenchmarkBaz/parallel-2   10   300 ns/op
`
	got, err := parseBench(strings.NewReader(text), "keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkBar/parallel-2"]; !ok {
		t.Errorf("keep mode stripped the name: %v", got)
	}
	// strip mode removes a per-name trailing -N, but refuses when that
	// would merge distinct benchmarks.
	got, err = parseBench(strings.NewReader("BenchmarkFoo-16   10   100 ns/op\n"), "strip")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkFoo"]; !ok {
		t.Errorf("strip mode kept the suffix: %v", got)
	}
	collide := `BenchmarkBar/parallel-2   10   200 ns/op
BenchmarkBar/parallel-4   10   300 ns/op
`
	got, err = parseBench(strings.NewReader(collide), "strip")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("strip mode merged colliding names: %v", got)
	}
}

func TestCompareFailAbove(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	write := func(path, text string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, "BenchmarkRunA-8 100 1000 ns/op\nBenchmarkRunB-8 100 2000 ns/op\n")

	// Within tolerance: 5% over on A, B improved.
	write(newPath, "BenchmarkRunA-8 100 1050 ns/op\nBenchmarkRunB-8 100 1500 ns/op\n")
	if err := compare(oldPath, newPath, "auto", 10); err != nil {
		t.Fatalf("5%% regression under a 10%% gate failed: %v", err)
	}
	// Beyond tolerance: A is 50% slower.
	write(newPath, "BenchmarkRunA-8 100 1500 ns/op\nBenchmarkRunB-8 100 1500 ns/op\n")
	if err := compare(oldPath, newPath, "auto", 10); err == nil {
		t.Fatal("50% regression under a 10% gate did not fail")
	}
	// Negative threshold disables the gate entirely.
	if err := compare(oldPath, newPath, "auto", -1); err != nil {
		t.Fatalf("disabled gate failed: %v", err)
	}
}
