package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/service"
)

// startServer runs the real uopsd server on an ephemeral port and returns
// its base URL plus a shutdown function that waits for a clean exit.
func startServer(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	var stdout bytes.Buffer
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			&stdout, logger, func(addr string) { addrc <- addr })
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("server exit: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Error("server did not shut down")
			}
			if !strings.Contains(stdout.String(), "listening on http://") {
				t.Errorf("startup banner missing from stdout: %q", stdout.String())
			}
		}
	case err := <-done:
		cancel()
		t.Fatalf("server exited before binding: %v", err)
		return "", nil
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestUopsdCoalescingStorm drives the acceptance scenario end to end through
// the real server: with a cold cache, a storm of concurrent identical
// requests performs exactly one measurement run (verified via /v1/stats),
// every response is byte-identical, and bad input yields 4xx without
// terminating the process.
func TestUopsdCoalescingStorm(t *testing.T) {
	base, shutdown := startServer(t, "-cache", t.TempDir(), "-j", "2")
	defer shutdown()

	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// The storm: K identical cold requests, in flight together (the cold
	// run is dominated by blocking discovery, so the later requests attach
	// while the first is still measuring; the stats assertions below hold
	// even if some request misses the flight and becomes a warm store hit).
	const storm = 6
	target := base + "/v1/arch/skylake?only=ADD_R64_R64,PXOR_XMM_XMM"
	codes := make([]int, storm)
	bodies := make([][]byte, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(target)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}

	code, statsBody := getBody(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats service.StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	// Exactly one measurement run served the whole storm: only the two
	// requested variants were ever measured, and every request either led a
	// run (warm ones are store hits, not re-measurements) or coalesced onto
	// one.
	if stats.Engine.VariantsMeasured != 2 {
		t.Errorf("storm measured %d variants, want exactly 2 (stats: %s)",
			stats.Engine.VariantsMeasured, statsBody)
	}
	if got := stats.Engine.Runs + stats.Engine.CoalescedWaiters; got != storm {
		t.Errorf("runs+coalesced = %d, want %d (stats: %s)", got, storm, statsBody)
	}
	if stats.Engine.Runs > 1 && stats.Engine.ResultHits != stats.Engine.Runs-1 {
		t.Errorf("%d uncoalesced runs but %d store hits (stats: %s)",
			stats.Engine.Runs, stats.Engine.ResultHits, statsBody)
	}

	// Bad input: 4xx, and the daemon keeps serving.
	if code, _ := getBody(t, base+"/v1/arch/z80"); code != http.StatusBadRequest {
		t.Errorf("unknown generation = %d, want 400", code)
	}
	if code, _ := getBody(t, base+"/v1/arch/skylake/variant/NOPE"); code != http.StatusNotFound {
		t.Errorf("unknown variant = %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("server stopped serving after bad requests: healthz = %d", code)
	}
}

// TestUopsdJobsEndToEnd drives the async job API through the real server —
// create, poll, stream, result — and rides the same warm server to check the
// serving table stakes: /metrics exposition and conditional GETs.
func TestUopsdJobsEndToEnd(t *testing.T) {
	base, shutdown := startServer(t, "-cache", t.TempDir(), "-j", "2")
	defer shutdown()
	query := "only=ADD_R64_R64,PXOR_XMM_XMM"

	resp, err := http.Post(base+"/v1/jobs?gen=skylake&"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created service.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || created.ID == "" {
		t.Fatalf("job create = %d, id %q", resp.StatusCode, created.ID)
	}

	var final service.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := getBody(t, base+"/v1/jobs/"+created.ID)
		if code != http.StatusOK {
			t.Fatalf("job status = %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &final); err != nil {
			t.Fatal(err)
		}
		if final.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck running: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != "done" {
		t.Fatalf("job finished in state %q: %s", final.State, final.Error)
	}

	// The stream of the finished job replays every variant and closes with a
	// done event.
	code, streamBody := getBody(t, base+"/v1/jobs/"+created.ID+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream = %d", code)
	}
	lines := bytes.Split(bytes.TrimRight(streamBody, "\n"), []byte("\n"))
	variants := 0
	var last struct{ Event, State string }
	for _, line := range lines {
		var ev struct{ Event, State string }
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		if ev.Event == "variant" {
			variants++
		}
		last = ev
	}
	if variants != 2 || last.Event != "done" || last.State != "done" {
		t.Errorf("stream: %d variants, final event %+v; want 2 variants and a done event", variants, last)
	}

	// The job result is byte-identical to the synchronous endpoint.
	code, jobResult := getBody(t, base+"/v1/jobs/"+created.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("job result = %d", code)
	}
	code, syncResult := getBody(t, base+"/v1/arch/skylake?"+query)
	if code != http.StatusOK {
		t.Fatalf("sync request = %d", code)
	}
	if !bytes.Equal(jobResult, syncResult) {
		t.Error("job result differs from the synchronous response")
	}

	// Conditional GET: the warm response's validator turns into a 304.
	resp, err = http.Get(base + "/v1/arch/skylake?" + query)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("warm response has no ETag")
	}
	req, _ := http.NewRequest("GET", base+"/v1/arch/skylake?"+query, nil)
	req.Header.Set("If-None-Match", tag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match = %d, want 304", resp.StatusCode)
	}

	// The metrics exposition is served and mentions the finished job.
	code, metrics := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# HELP uopsd_http_requests_total",
		"uopsd_engine_variants_measured_total 2", // one measured run served everything above
		`uopsd_jobs{state="done"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition lacks %q; full exposition:\n%s", want, metrics)
		}
	}
}

// TestUopsdRateLimitFlags checks -rate/-burst end to end: past the burst the
// server answers 429 with a Retry-After while probe endpoints stay open.
func TestUopsdRateLimitFlags(t *testing.T) {
	// A refill rate this low cannot hand out a second token during the test,
	// so exactly one request is admitted.
	base, shutdown := startServer(t, "-rate", "0.0001", "-burst", "1")
	defer shutdown()

	if code, body := getBody(t, base+"/v1/backends"); code != http.StatusOK {
		t.Fatalf("request within burst = %d: %s", code, body)
	}
	resp, err := http.Get(base + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	for i := 0; i < 3; i++ {
		if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
			t.Errorf("healthz with a dry bucket = %d, want 200", code)
		}
	}
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("metrics with a dry bucket = %d, want 200", code)
	}
}

// TestUopsdShutdownQuiescesRunningJob is the shutdown acceptance test: with a
// full-ISA job still measuring, SIGTERM-style cancellation must cancel the
// run after the drain deadline and exit cleanly instead of hanging or
// leaking the measurement goroutine.
func TestUopsdShutdownQuiescesRunningJob(t *testing.T) {
	base, shutdown := startServer(t, "-j", "2", "-drain", "100ms")

	// A job over the full Skylake ISA runs long enough to still be measuring
	// (or discovering) when shutdown begins.
	resp, err := http.Post(base+"/v1/jobs?gen=skylake", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created service.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d (%v)", resp.StatusCode, err)
	}

	// Wait until the job's run actually started.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := getBody(t, base+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		var stats service.StatsResponse
		if err := json.Unmarshal(body, &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Engine.Runs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// shutdown() fails the test if run() errors or takes more than 30s; with
	// a 100ms drain deadline a hang on the full-ISA run would trip it.
	start := time.Now()
	shutdown()
	if took := time.Since(start); took > 15*time.Second {
		t.Errorf("shutdown with a running job took %v", took)
	}
}

// TestUopsdFlagErrors pins the usage surface: a bad flag or an unknown
// backend must fail startup with an error, not serve.
func TestUopsdFlagErrors(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	var stdout bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &stdout, logger, nil); err == nil {
		t.Error("run accepted an unknown flag")
	}
	err := run(context.Background(), []string{"-backend", "warpdrive"}, &stdout, logger, nil)
	if err == nil || !strings.Contains(err.Error(), "warpdrive") {
		t.Errorf("run with unknown backend: %v", err)
	}
}

// TestUopsdFleetFrontTier runs the two-tier deployment end to end: two
// worker uopsd instances on the default backend, one front uopsd with
// -fleet pointing at both. The front tier's XML must be byte-identical to a
// worker's own rendering of the same query, its /v1/backends must identify
// the remote serving backend, and its /v1/stats must carry fleet counters.
func TestUopsdFleetFrontTier(t *testing.T) {
	w1, stop1 := startServer(t)
	defer stop1()
	w2, stop2 := startServer(t)
	defer stop2()
	defer remote.Shutdown()
	front, stopFront := startServer(t, "-fleet", w1+","+w2)
	defer stopFront()

	const query = "/v1/arch/skylake?only=ADD_R64_R64,IMUL_R64_R64,DIV_R64&format=xml"
	code, want := getBody(t, w1+query)
	if code != http.StatusOK {
		t.Fatalf("worker GET %s = %d: %s", query, code, want)
	}
	code, got := getBody(t, front+query)
	if code != http.StatusOK {
		t.Fatalf("front GET %s = %d: %s", query, code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("front-tier XML differs from worker XML (%d vs %d bytes)", len(got), len(want))
	}

	code, body := getBody(t, front+"/v1/backends")
	if code != http.StatusOK {
		t.Fatalf("front GET /v1/backends = %d", code)
	}
	var backends struct {
		Serving service.ServingInfo `json:"serving"`
	}
	if err := json.Unmarshal(body, &backends); err != nil {
		t.Fatal(err)
	}
	if backends.Serving.Name != "remote" || !strings.Contains(backends.Serving.Fingerprint, "fleet(") {
		t.Errorf("front serving identity = %+v, want the remote backend", backends.Serving)
	}

	code, body = getBody(t, front+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("front GET /v1/stats = %d", code)
	}
	if !strings.Contains(string(body), `"fleet"`) {
		t.Errorf("front /v1/stats lacks fleet counters:\n%s", body)
	}
}
