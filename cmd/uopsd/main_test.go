package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/service"
)

// startServer runs the real uopsd server on an ephemeral port and returns
// its base URL plus a shutdown function that waits for a clean exit.
func startServer(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	var stdout bytes.Buffer
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			&stdout, logger, func(addr string) { addrc <- addr })
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("server exit: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Error("server did not shut down")
			}
			if !strings.Contains(stdout.String(), "listening on http://") {
				t.Errorf("startup banner missing from stdout: %q", stdout.String())
			}
		}
	case err := <-done:
		cancel()
		t.Fatalf("server exited before binding: %v", err)
		return "", nil
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestUopsdCoalescingStorm drives the acceptance scenario end to end through
// the real server: with a cold cache, a storm of concurrent identical
// requests performs exactly one measurement run (verified via /v1/stats),
// every response is byte-identical, and bad input yields 4xx without
// terminating the process.
func TestUopsdCoalescingStorm(t *testing.T) {
	base, shutdown := startServer(t, "-cache", t.TempDir(), "-j", "2")
	defer shutdown()

	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// The storm: K identical cold requests, in flight together (the cold
	// run is dominated by blocking discovery, so the later requests attach
	// while the first is still measuring; the stats assertions below hold
	// even if some request misses the flight and becomes a warm store hit).
	const storm = 6
	target := base + "/v1/arch/skylake?only=ADD_R64_R64,PXOR_XMM_XMM"
	codes := make([]int, storm)
	bodies := make([][]byte, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(target)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}

	code, statsBody := getBody(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats service.StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	// Exactly one measurement run served the whole storm: only the two
	// requested variants were ever measured, and every request either led a
	// run (warm ones are store hits, not re-measurements) or coalesced onto
	// one.
	if stats.Engine.VariantsMeasured != 2 {
		t.Errorf("storm measured %d variants, want exactly 2 (stats: %s)",
			stats.Engine.VariantsMeasured, statsBody)
	}
	if got := stats.Engine.Runs + stats.Engine.CoalescedWaiters; got != storm {
		t.Errorf("runs+coalesced = %d, want %d (stats: %s)", got, storm, statsBody)
	}
	if stats.Engine.Runs > 1 && stats.Engine.ResultHits != stats.Engine.Runs-1 {
		t.Errorf("%d uncoalesced runs but %d store hits (stats: %s)",
			stats.Engine.Runs, stats.Engine.ResultHits, statsBody)
	}

	// Bad input: 4xx, and the daemon keeps serving.
	if code, _ := getBody(t, base+"/v1/arch/z80"); code != http.StatusBadRequest {
		t.Errorf("unknown generation = %d, want 400", code)
	}
	if code, _ := getBody(t, base+"/v1/arch/skylake/variant/NOPE"); code != http.StatusNotFound {
		t.Errorf("unknown variant = %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("server stopped serving after bad requests: healthz = %d", code)
	}
}

// TestUopsdFlagErrors pins the usage surface: a bad flag or an unknown
// backend must fail startup with an error, not serve.
func TestUopsdFlagErrors(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	var stdout bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &stdout, logger, nil); err == nil {
		t.Error("run accepted an unknown flag")
	}
	err := run(context.Background(), []string{"-backend", "warpdrive"}, &stdout, logger, nil)
	if err == nil || !strings.Contains(err.Error(), "warpdrive") {
		t.Errorf("run with unknown backend: %v", err)
	}
}
