// Command uopsd is the long-running characterization service: an HTTP server
// over the characterization engine and the persistent result store, serving
// JSON/XML characterization results to many concurrent callers.
//
// Usage:
//
//	uopsd [-addr localhost:8631] [-j 8] [-cache DIR] [-backend pipesim] [-v]
//
// Endpoints:
//
//	GET /healthz                       liveness probe
//	GET /v1/backends                   the measurement-backend registry
//	GET /v1/stats                      engine + coalescing + request counters
//	GET /v1/arch/{gen}                 full characterization (?only=..., ?quick=1, ?format=xml)
//	GET /v1/arch/{gen}/variant/{name}  a single instruction variant
//
// The server owns one engine: concurrent identical queries are coalesced
// into a single measurement run, and with -cache the run's results persist,
// so repeated and subsequent queries are warm store hits. Generation names
// in URLs are case-insensitive with separators ignored ("sandy-bridge").
// SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/service"
)

// errUsage signals that the flag package already printed the diagnostic and
// usage text, so main only needs to set the exit status.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("uopsd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, log.Default(), nil); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses the arguments and serves until ctx is cancelled. It is
// separated from main so the end-to-end tests can drive the real server
// without spawning a process; ready, if non-nil, is called with the bound
// address once the listener is up.
func run(ctx context.Context, args []string, stdout io.Writer, logger *log.Logger, ready func(addr string)) error {
	fs := flag.NewFlagSet("uopsd", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8631", "listen address (host:port; port 0 picks an ephemeral port)")
	jobs := fs.Int("j", runtime.NumCPU(), "total number of parallel measurement workers")
	cacheDir := fs.String("cache", "", "directory of the persistent result store (results survive restarts and are shared with the CLI tools)")
	backendName := fs.String("backend", "", `measurement backend to serve from (default: "`+measure.DefaultBackend+`")`)
	verbose := fs.Bool("v", false, "log engine cache diagnostics and blocking-discovery progress")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	ecfg := engine.Config{Workers: *jobs, CacheDir: *cacheDir, Backend: *backendName}
	if *verbose {
		ecfg.Log = logger.Printf
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{Engine: eng, Log: logger.Printf})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("backend %s version %s, %d workers, cache %q",
		eng.Backend().Name(), eng.Backend().Version(), eng.Workers(), *cacheDir)
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	// Characterization handlers legitimately run for minutes, so no overall
	// write timeout — but header reads and idle keep-alives are bounded, so
	// trickling or abandoned connections cannot pin goroutines and file
	// descriptors forever.
	srv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
