// Command uopsd is the long-running characterization service: an HTTP server
// over the characterization engine and the persistent result store, serving
// JSON/XML characterization results to many concurrent callers.
//
// Usage:
//
//	uopsd [-addr localhost:8631] [-j 8] [-cache DIR] [-backend pipesim]
//	      [-store-max-bytes 2G] [-store-max-files N] [-store-durable=false]
//	      [-fleet URL,URL] [-rate N -burst M] [-job-ttl 15m] [-drain 10s]
//	      [-header-timeout 10s] [-idle-timeout 2m] [-v]
//
// Endpoints:
//
//	GET  /healthz                       liveness probe
//	GET  /metrics                       Prometheus-style counter exposition
//	GET  /v1/backends                   the measurement-backend registry + serving identity
//	POST /v1/measure                    batch sequence measurement (fleet-worker endpoint)
//	GET  /v1/stats                      engine + coalescing + request counters
//	GET  /v1/arch/{gen}                 full characterization (?only=..., ?quick=1, ?format=xml)
//	GET  /v1/arch/{gen}/variant/{name}  a single instruction variant
//	POST /v1/jobs                       async characterization (?gen=..., same query surface)
//	GET  /v1/jobs[/{id}[/stream|/result]]  job listing, progress, streaming, result
//
// The server owns one engine: concurrent identical queries — synchronous and
// jobs alike — are coalesced into a single measurement run, and with -cache
// the run's results persist, so repeated and subsequent queries are warm
// store hits (and conditional GETs with If-None-Match answer 304 without
// touching the engine). -rate enables a token-bucket rate limiter (requests
// per second, -burst deep), off by default. Generation names in URLs are
// case-insensitive with separators ignored ("sandy-bridge"). SIGINT/SIGTERM
// shut the server down gracefully: the listener drains, in-flight jobs get a
// completion deadline, and any still-running measurement — including a
// detached coalesced run whose waiters all went away — is cancelled and
// quiesced before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/service"
	"uopsinfo/internal/store"
)

// errUsage signals that the flag package already printed the diagnostic and
// usage text, so main only needs to set the exit status.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("uopsd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, log.Default(), nil); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses the arguments and serves until ctx is cancelled. It is
// separated from main so the end-to-end tests can drive the real server
// without spawning a process; ready, if non-nil, is called with the bound
// address once the listener is up.
func run(ctx context.Context, args []string, stdout io.Writer, logger *log.Logger, ready func(addr string)) error {
	fs := flag.NewFlagSet("uopsd", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8631", "listen address (host:port; port 0 picks an ephemeral port)")
	jobs := fs.Int("j", runtime.NumCPU(), "total number of parallel measurement workers")
	cacheDir := fs.String("cache", "", "directory of the persistent result store (results survive restarts and are shared with the CLI tools)")
	storeMaxBytes := fs.String("store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	storeMaxFiles := fs.Int64("store-max-files", 0, "file-count budget of the persistent store; cold digests are evicted LRU past it (0: unbounded)")
	storeDurable := fs.Bool("store-durable", true, "fsync store writes before publishing them, so completed saves survive a crash")
	backendName := fs.String("backend", "", `measurement backend to serve from (default: "`+measure.DefaultBackend+`")`)
	fleet := fs.String("fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	headerTimeout := fs.Duration("header-timeout", 10*time.Second, "deadline for reading a request's headers")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is kept open")
	rate := fs.Float64("rate", 0, "rate limit in requests per second across all endpoints except /healthz and /metrics (0 disables limiting)")
	burst := fs.Int("burst", 0, "rate-limiter burst depth (default: ceil of -rate)")
	jobTTL := fs.Duration("job-ttl", service.DefaultJobTTL, "how long finished async jobs stay listed and fetchable")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests and async jobs before running measurements are cancelled")
	verbose := fs.Bool("v", false, "log engine cache diagnostics and blocking-discovery progress")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	resolvedBackend, err := remote.Setup(*fleet, *backendName)
	if err != nil {
		return err
	}

	// baseCtx is the lifetime of the engine's measurement runs and the async
	// jobs: cancelled only after the HTTP side has drained, so that shutdown
	// actually quiesces runs that no request is waiting on anymore.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()

	ecfg := engine.Config{
		Workers: *jobs, CacheDir: *cacheDir, Backend: resolvedBackend, BaseContext: baseCtx,
		StoreMaxFiles: *storeMaxFiles, StoreDurable: *storeDurable,
	}
	if *storeMaxBytes != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(*storeMaxBytes); err != nil {
			return fmt.Errorf("-store-max-bytes: %w", err)
		}
	}
	if *verbose {
		ecfg.Log = logger.Printf
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		Engine:      eng,
		Log:         logger.Printf,
		BaseContext: baseCtx,
		JobTTL:      *jobTTL,
		RateLimit:   *rate,
		RateBurst:   *burst,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("backend %s version %s, %d workers, cache %q",
		eng.Backend().Name(), eng.Backend().Version(), eng.Workers(), *cacheDir)
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	// Characterization handlers legitimately run for minutes, so no overall
	// write timeout — but header reads and idle keep-alives are bounded, so
	// trickling or abandoned connections cannot pin goroutines and file
	// descriptors forever.
	srv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: *headerTimeout,
		IdleTimeout:       *idleTimeout,
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}
	// Shutdown in dependency order: drain the HTTP side (listener + in-flight
	// handlers), give async jobs the same deadline to finish, then cancel the
	// engine's base context — aborting anything still measuring, in
	// particular a detached coalesced run whose waiters are all gone — and
	// wait for the engine to quiesce. Without the cancel+drain step the
	// process would exit while a measurement goroutine still burns CPU (or,
	// under a test harness, leak it).
	logger.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if err := svc.DrainJobs(shutCtx); err != nil {
		logger.Printf("%v (cancelling)", err)
	}
	baseCancel()
	quiesceCtx, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer qcancel()
	if err := eng.Drain(quiesceCtx); err != nil {
		return errors.Join(shutErr, err)
	}
	return shutErr
}
