// Command uopsinfo characterizes the latency, throughput and port usage of
// the instruction variants of one (or all) simulated Intel Core
// microarchitecture generations and writes the results to a machine-readable
// XML file, mirroring the output of the paper's tool (Section 6.4).
//
// Usage:
//
//	uopsinfo [-arch "Skylake"] [-out results.xml] [-sample 20] [-only ADD_R64_R64,IMUL_R64_R64] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uopsinfo: ")

	archName := flag.String("arch", "Skylake", `microarchitecture to characterize (e.g. "Skylake", "Sandy Bridge") or "all"`)
	out := flag.String("out", "results.xml", "output XML file")
	sample := flag.Int("sample", 25, "characterize every n-th instruction variant (1 = all, slower)")
	only := flag.String("only", "", "comma-separated list of variant names to characterize (overrides -sample)")
	quick := flag.Bool("quick", false, "skip the per-operand-pair latency measurements")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	var archs []*uarch.Arch
	if *archName == "all" {
		archs = uarch.All()
	} else {
		a, err := uarch.ByName(*archName)
		if err != nil {
			log.Fatal(err)
		}
		archs = []*uarch.Arch{a}
	}

	doc := &xmlout.Document{}
	for _, arch := range archs {
		start := time.Now()
		c := core.NewForArch(arch)
		opts := core.Options{SkipLatency: *quick}
		if *only != "" {
			opts.Only = strings.Split(*only, ",")
		} else if *sample > 1 {
			instrs := arch.InstrSet().Instrs()
			for i := 0; i < len(instrs); i += *sample {
				opts.Only = append(opts.Only, instrs[i].Name)
			}
		}
		if *verbose {
			opts.Progress = func(done, total int, name string) {
				if done%50 == 0 || done == total {
					log.Printf("%s: %d/%d (%s)", arch.Name(), done, total, name)
				}
			}
		}
		res, err := c.CharacterizeAll(opts)
		if err != nil {
			log.Fatalf("%s: %v", arch.Name(), err)
		}
		var analyzers []*iaca.Analyzer
		for _, v := range iaca.SupportedVersions(arch.Gen()) {
			a, err := iaca.New(v, arch)
			if err != nil {
				log.Fatal(err)
			}
			analyzers = append(analyzers, a)
		}
		doc.Architectures = append(doc.Architectures, xmlout.FromArchResult(res, analyzers))
		log.Printf("%s: characterized %d variants in %v", arch.Name(), len(res.Results), time.Since(start).Round(time.Millisecond))
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := xmlout.Write(f, doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
