// Command uopsinfo characterizes the latency, throughput and port usage of
// the instruction variants of one (or all) simulated Intel Core
// microarchitecture generations and writes the results to a machine-readable
// XML file, mirroring the output of the paper's tool (Section 6.4).
//
// Usage:
//
//	uopsinfo [-arch "Skylake"] [-out results.xml] [-sample 20] [-only ADD_R64_R64,IMUL_R64_R64] [-quick] [-j 8] [-cache DIR] [-backend pipesim] [-fleet URL,URL] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The -j flag sets the total number of parallel workers (default: the number
// of CPUs). Architectures are characterized concurrently and, within each
// architecture, blocking-instruction discovery and the instruction variants
// are sharded across per-worker runner/harness stacks; the worker budget is
// split between the two levels. The -backend flag selects the measurement
// backend (the execution substrate) from the registry; -backends lists the
// registered backends and exits. The -cache flag points at a persistent
// result store: discovered blocking sets, whole-ISA results and individual
// per-variant measurements are reused across invocations (keyed by the
// backend fingerprint among other inputs), corrupt or stale entries silently
// fall back to recomputation, and a partially evicted store re-measures only
// the missing variants. The output XML is byte-identical regardless of -j
// and of cache state: results are merged deterministically and sorted before
// writing.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"runtime/pprof"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

// errUsage signals that the flag package already printed the diagnostic and
// usage text, so main only needs to set the exit status.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("uopsinfo: ")
	if err := run(os.Args[1:], os.Stdout, log.Default()); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// config holds the parsed command-line options.
type config struct {
	archName string
	out      string
	sample   int
	only     string
	quick    bool
	verbose  bool
	jobs     int
	cache    string
	storeMax string
	storeCap int64
	durable  bool
	backend  string
	fleet    string
	backends bool
	cpuprof  string
	memprof  string
}

// run parses the arguments and executes the characterization pipeline. It is
// separated from main so the end-to-end tests can drive the full pipeline
// without spawning a process.
func run(args []string, stdout io.Writer, logger *log.Logger) error {
	var cfg config
	fs := flag.NewFlagSet("uopsinfo", flag.ContinueOnError)
	fs.StringVar(&cfg.archName, "arch", "Skylake", `microarchitecture to characterize (e.g. "Skylake", "Sandy Bridge" or "sandy-bridge"; case and separators are ignored) or "all"`)
	fs.StringVar(&cfg.out, "out", "results.xml", "output XML file")
	fs.IntVar(&cfg.sample, "sample", 25, "characterize every n-th instruction variant (1 = all, slower)")
	fs.StringVar(&cfg.only, "only", "", "comma-separated list of variant names to characterize (overrides -sample)")
	fs.BoolVar(&cfg.quick, "quick", false, "skip the per-operand-pair latency measurements")
	fs.BoolVar(&cfg.verbose, "v", false, "print progress")
	fs.IntVar(&cfg.jobs, "j", runtime.NumCPU(), "total number of parallel workers (1 = fully sequential)")
	fs.StringVar(&cfg.cache, "cache", "", "directory of the persistent result store (blocking sets, results and per-variant records are reused across runs)")
	fs.StringVar(&cfg.storeMax, "store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	fs.Int64Var(&cfg.storeCap, "store-max-files", 0, "file-count budget of the persistent store; cold digests are evicted LRU past it (0: unbounded)")
	fs.BoolVar(&cfg.durable, "store-durable", false, "fsync store writes before publishing them (a crash-lost cache entry only costs one re-measurement, so one-shot runs default to off)")
	fs.StringVar(&cfg.backend, "backend", "", `measurement backend to run on (default: "`+measure.DefaultBackend+`"; see -backends)`)
	fs.StringVar(&cfg.fleet, "fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	fs.BoolVar(&cfg.backends, "backends", false, "list the registered measurement backends and exit")
	fs.StringVar(&cfg.cpuprof, "cpuprofile", "", "write a CPU profile of the characterization to this file")
	fs.StringVar(&cfg.memprof, "memprofile", "", "write a heap profile (after characterization) to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if cfg.jobs < 1 {
		cfg.jobs = 1
	}
	if cfg.backends {
		for _, name := range measure.Names() {
			b, _ := measure.Lookup(name)
			fmt.Fprintf(stdout, "%s\tversion %s\n", name, b.Version())
		}
		return nil
	}

	var archs []*uarch.Arch
	if cfg.archName == "all" {
		archs = uarch.All()
	} else {
		a, err := uarch.ByName(cfg.archName)
		if err != nil {
			return err
		}
		archs = []*uarch.Arch{a}
	}

	resolvedBackend, err := remote.Setup(cfg.fleet, cfg.backend)
	if err != nil {
		return err
	}
	ecfg := engine.Config{
		Workers: cfg.jobs, CacheDir: cfg.cache, Backend: resolvedBackend,
		StoreMaxFiles: cfg.storeCap, StoreDurable: cfg.durable,
	}
	if cfg.storeMax != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(cfg.storeMax); err != nil {
			return fmt.Errorf("-store-max-bytes: %w", err)
		}
	}
	if cfg.verbose {
		ecfg.BlockingProgress = func(gen uarch.Generation, done, total int, name string) {
			if done%50 == 0 || done == total {
				logger.Printf("%s: blocking discovery %d/%d (%s)", gen, done, total, name)
			}
		}
		ecfg.Log = logger.Printf
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}

	// The CPU profile brackets the whole characterization (including the XML
	// write); the heap profile is taken once at the end, after a GC, so it
	// shows what the pipeline retains rather than transient garbage.
	if cfg.cpuprof != "" {
		f, err := os.Create(cfg.cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Split the worker budget between the architecture level and the
	// per-variant level so -j bounds the total parallelism (e.g. -j 8 over
	// 5 architectures gives worker counts 2,2,2,1,1).
	split := engine.SplitBudget(cfg.jobs, len(archs))
	outer := cfg.jobs
	if outer > len(archs) {
		outer = len(archs)
	}

	// Results are stored by architecture index, so the document layout does
	// not depend on completion order (xmlout.Write additionally sorts by
	// name).
	results := make([]xmlout.Architecture, len(archs))
	errs := make([]error, len(archs))
	sem := make(chan struct{}, outer)
	var wg sync.WaitGroup
	for i, arch := range archs {
		workers := split[i]
		wg.Add(1)
		go func(i int, arch *uarch.Arch, workers int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = characterizeArch(eng, arch, cfg, workers, logger)
		}(i, arch, workers)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}

	if cfg.verbose {
		st := eng.Stats()
		logger.Printf("backend %s version %s: %d result hits, %d variant hits, %d variants measured, %d blocking hits, %d save errors",
			eng.Backend().Name(), eng.Backend().Version(),
			st.ResultHits, st.VariantHits, st.VariantsMeasured, st.BlockingHits, st.SaveErrors)
	}

	doc := &xmlout.Document{Architectures: results}
	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := xmlout.Write(f, doc); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", cfg.out)

	if cfg.memprof != "" {
		mf, err := os.Create(cfg.memprof)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("write heap profile: %w", err)
		}
	}
	return nil
}

// characterizeArch runs the characterization of one generation through the
// engine with the given per-variant worker count and converts the result to
// the XML document model.
func characterizeArch(eng *engine.Engine, arch *uarch.Arch, cfg config, workers int, logger *log.Logger) (xmlout.Architecture, error) {
	start := time.Now()
	opts := engine.RunOptions{SkipLatency: cfg.quick, Workers: workers}
	if cfg.only != "" {
		opts.Only = strings.Split(cfg.only, ",")
	} else if cfg.sample > 1 {
		instrs := arch.InstrSet().Instrs()
		for i := 0; i < len(instrs); i += cfg.sample {
			opts.Only = append(opts.Only, instrs[i].Name)
		}
	}
	if cfg.verbose {
		opts.Progress = func(done, total int, name string) {
			if done%50 == 0 || done == total {
				logger.Printf("%s: %d/%d (%s)", arch.Name(), done, total, name)
			}
		}
	}
	res, err := eng.CharacterizeArch(arch.Gen(), opts)
	if err != nil {
		return xmlout.Architecture{}, err
	}
	var analyzers []*iaca.Analyzer
	for _, v := range iaca.SupportedVersions(arch.Gen()) {
		a, err := iaca.New(v, arch)
		if err != nil {
			return xmlout.Architecture{}, err
		}
		analyzers = append(analyzers, a)
	}
	logger.Printf("%s: characterized %d variants in %v (%d workers)",
		arch.Name(), len(res.Results), time.Since(start).Round(time.Millisecond), workers)
	return xmlout.FromArchResult(res, analyzers), nil
}
