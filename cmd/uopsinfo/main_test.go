package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/service"
	"uopsinfo/internal/xmlout"
)

// runPipeline drives the full command pipeline (flag parsing,
// characterization, XML writing) in-process and returns the bytes of the
// written results file.
func runPipeline(t *testing.T, args ...string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "results.xml")
	var stdout bytes.Buffer
	logger := log.New(io.Discard, "", 0)
	if err := run(append(args, "-out", out), &stdout, logger); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if got, want := stdout.String(), "wrote "+out+"\n"; got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEndToEndSmoke characterizes a small -only set, re-parses the written
// XML and checks the variant counts and a known latency value (IMUL's
// 3-cycle latency on Skylake).
func TestEndToEndSmoke(t *testing.T) {
	only := "ADD_R64_R64,IMUL_R64_R64,PXOR_XMM_XMM,MOV_R64_M64"
	data := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "4")

	doc, err := xmlout.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Architectures) != 1 || doc.Architectures[0].Name != "Skylake" {
		t.Fatalf("got architectures %+v, want exactly Skylake", doc.Architectures)
	}
	arch := &doc.Architectures[0]
	if len(arch.Instructions) != 4 {
		t.Fatalf("got %d instructions, want 4", len(arch.Instructions))
	}
	imul := arch.Lookup("IMUL_R64_R64")
	if imul == nil || imul.Measured == nil {
		t.Fatal("no measurement for IMUL_R64_R64")
	}
	found := false
	for _, l := range imul.Measured.Latencies {
		if l.Source == "op1" && l.Dest == "op1" && !l.SameReg {
			found = true
			if l.Cycles < 2.5 || l.Cycles > 3.5 {
				t.Errorf("IMUL_R64_R64 op1->op1 latency = %.2f, want 3", l.Cycles)
			}
		}
	}
	if !found {
		t.Errorf("IMUL_R64_R64 has no op1->op1 latency entry: %+v", imul.Measured.Latencies)
	}
	if add := arch.Lookup("ADD_R64_R64"); add == nil || add.Measured == nil || add.Skipped != "" {
		t.Errorf("ADD_R64_R64 not fully characterized: %+v", add)
	}
}

// TestOutputByteIdenticalAcrossWorkerCounts is the command-level determinism
// guarantee: -j N must produce byte-identical XML to -j 1. The variant set
// deliberately includes a divider-based instruction (DIV_R64), whose
// measurement switches the simulator's operand-value regime mid-run, and
// memory operands, whose addresses come from the per-worker arena.
func TestOutputByteIdenticalAcrossWorkerCounts(t *testing.T) {
	only := "ADD_R64_R64,IMUL_R64_R64,PXOR_XMM_XMM,MOV_R64_M64,MOV_M64_R64,DIV_R64,LEA_R64_M64,SHLD_R64_R64_I8"
	base := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "1")
	for _, j := range []string{"2", "5"} {
		got := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", j)
		if !bytes.Equal(got, base) {
			t.Errorf("-j %s output differs from -j 1 (%d vs %d bytes)", j, len(got), len(base))
		}
	}
}

// TestCacheColdWarmByteIdentical is the command-level cache guarantee: a
// warm-cache run must produce byte-identical XML to the cold run that filled
// the store, for any worker count, and corrupting the store must silently
// fall back to recomputation with — again — identical output.
func TestCacheColdWarmByteIdentical(t *testing.T) {
	cache := t.TempDir()
	only := "ADD_R64_R64,IMUL_R64_R64,PXOR_XMM_XMM,MOV_R64_M64,DIV_R64"
	cold := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "4", "-cache", cache)

	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run left the cache directory empty")
	}

	for _, j := range []string{"1", "4"} {
		warm := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", j, "-cache", cache)
		if !bytes.Equal(warm, cold) {
			t.Errorf("warm-cache -j %s output differs from the cold run (%d vs %d bytes)", j, len(warm), len(cold))
		}
	}

	for _, ent := range entries {
		if err := os.WriteFile(filepath.Join(cache, ent.Name()), []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recomputed := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "4", "-cache", cache)
	if !bytes.Equal(recomputed, cold) {
		t.Error("recomputed-after-corruption output differs from the cold run")
	}

	// A cacheless run must agree with everything above.
	plain := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "4")
	if !bytes.Equal(plain, cold) {
		t.Error("cached output differs from a cacheless run")
	}
}

// TestCacheIncrementalEviction is the command-level incremental-cache
// guarantee (mixed warm/cold): after evicting the whole-ISA entry and a
// strict subset of the per-variant entries, a warm run — which re-measures
// only the evicted variants and serves the rest from the store — must emit
// XML byte-identical to the cold run, for worker counts 1, 4 and NumCPU.
func TestCacheIncrementalEviction(t *testing.T) {
	cache := t.TempDir()
	only := "ADD_R64_R64,IMUL_R64_R64,PXOR_XMM_XMM,MOV_R64_M64,DIV_R64"
	cold := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "4", "-cache", cache)

	evict := func(prefix string, max int) int {
		t.Helper()
		entries, err := os.ReadDir(cache)
		if err != nil {
			t.Fatal(err)
		}
		removed := 0
		for _, ent := range entries {
			if !strings.HasPrefix(ent.Name(), prefix+"-") || removed == max {
				continue
			}
			if err := os.Remove(filepath.Join(cache, ent.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
		return removed
	}

	for _, j := range []int{1, 4, runtime.NumCPU()} {
		// Each iteration starts from the fully warm store the previous run
		// left behind and evicts the whole-ISA result plus two variants.
		if n := evict("result", -1); n == 0 {
			t.Fatal("no whole-ISA result entry to evict")
		}
		if n := evict("variant", 2); n != 2 {
			t.Fatalf("evicted %d per-variant entries, want 2", n)
		}
		warm := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", fmt.Sprint(j), "-cache", cache)
		if !bytes.Equal(warm, cold) {
			t.Errorf("-j %d: incrementally warmed output differs from the cold run (%d vs %d bytes)",
				j, len(warm), len(cold))
		}
	}
}

// TestBackendsFlag checks uopsinfo -backends lists the default pipesim
// backend with a version fingerprint, and that an unknown -backend fails
// with an error naming the registered backends.
func TestBackendsFlag(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-backends"}, &stdout, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
	listed := false
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(line, "pipesim\t") && strings.Contains(line, "version") {
			listed = true
		}
	}
	if !listed {
		t.Errorf("-backends output does not list pipesim with a version:\n%s", stdout.String())
	}

	err := run([]string{"-backend", "no-such-substrate", "-only", "ADD_R64_R64"},
		io.Discard, log.New(io.Discard, "", 0))
	if err == nil || !strings.Contains(err.Error(), "pipesim") {
		t.Errorf("unknown -backend error = %v, want one listing the registered backends", err)
	}
}

// TestExplicitBackendFlagMatchesDefault checks -backend pipesim is the same
// substrate as the default.
func TestExplicitBackendFlagMatchesDefault(t *testing.T) {
	only := "ADD_R64_R64,IMUL_R64_R64"
	base := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "2")
	explicit := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "2", "-backend", "pipesim")
	if !bytes.Equal(base, explicit) {
		t.Error("-backend pipesim output differs from the default backend")
	}
}

// TestFleetFlagMatchesLocal drives the CLI through a loopback measurement
// fleet: -fleet pointing at two in-process uopsd workers must produce XML
// byte-identical to a local run. The variant set includes a divider-based
// instruction (DIV_R64), whose operand-value regime must travel with every
// sequence over the wire, and memory variants, whose virtual addresses must
// survive the encoding.
func TestFleetFlagMatchesLocal(t *testing.T) {
	only := "ADD_R64_R64,IMUL_R64_R64,DIV_R64,MOV_R64_M64,MOV_M64_R64,SHLD_R64_R64_I8"
	local := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "2")

	urls := make([]string, 2)
	for i := range urls {
		eng, err := engine.New(engine.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := service.New(service.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(svc)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	t.Cleanup(remote.Shutdown)
	fleet := runPipeline(t, "-arch", "Skylake", "-only", only, "-j", "2",
		"-fleet", strings.Join(urls, ","))
	if !bytes.Equal(local, fleet) {
		t.Errorf("-fleet output differs from the local run (%d vs %d bytes)", len(fleet), len(local))
	}

	// Naming a fleet while forcing a different backend is a configuration
	// error, not a silent override.
	err := run([]string{"-fleet", urls[0], "-backend", "pipesim", "-only", "ADD_R64_R64"},
		io.Discard, log.New(io.Discard, "", 0))
	if err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Errorf("-fleet with -backend pipesim: %v", err)
	}
}
