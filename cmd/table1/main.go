// Command table1 regenerates Table 1 of the paper: the number of instruction
// variants per microarchitecture generation and the agreement between the
// hardware (simulator) measurements and the IACA models for µop counts and
// port usage.
//
// Usage:
//
//	table1 [-sample 20] [-arch "Skylake"] [-j 8] [-cache DIR] [-backend pipesim]
//
// With -j > 1 the generations are compared concurrently on stacks built by
// the characterization engine; -cache reuses blocking sets discovered by
// earlier runs of any tool sharing the store, and -backend selects the
// measurement backend the comparison measures on.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/report"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")

	sample := flag.Int("sample", 20, "compare every n-th eligible instruction variant (1 = all, slower)")
	archName := flag.String("arch", "", `restrict to one generation (default: all nine; case and separators ignored, e.g. "sandy-bridge")`)
	verbose := flag.Bool("v", false, "print progress")
	jobs := flag.Int("j", runtime.NumCPU(), "total number of parallel workers (1 = fully sequential)")
	cacheDir := flag.String("cache", "", "directory of the persistent result store")
	storeMaxBytes := flag.String("store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	storeMaxFiles := flag.Int64("store-max-files", 0, "file-count budget of the persistent store (0: unbounded)")
	storeDurable := flag.Bool("store-durable", false, "fsync store writes before publishing them (one-shot runs default to off)")
	backend := flag.String("backend", "", "measurement backend to run on (default: pipesim)")
	fleet := flag.String("fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	flag.Parse()

	resolvedBackend, err := remote.Setup(*fleet, *backend)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := engine.Config{
		Workers: *jobs, CacheDir: *cacheDir, Backend: resolvedBackend,
		StoreMaxFiles: *storeMaxFiles, StoreDurable: *storeDurable,
	}
	if *storeMaxBytes != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(*storeMaxBytes); err != nil {
			log.Fatalf("-store-max-bytes: %v", err)
		}
	}
	if *verbose {
		ecfg.Log = log.Printf
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	opts := report.Table1Options{
		SampleEvery: *sample,
		Context:     report.NewContextWith(eng),
		Workers:     *jobs,
	}
	if *archName != "" {
		a, err := uarch.ByName(*archName)
		if err != nil {
			log.Fatal(err)
		}
		opts.Generations = []uarch.Generation{a.Gen()}
	}
	if *verbose {
		opts.Progress = func(arch string) { log.Printf("characterizing %s ...", arch) }
	}
	rows, err := report.BuildTable1(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.FormatTable1(rows))
	fmt.Printf("\n(every %d-th eligible variant compared; run with -sample 1 for the full comparison)\n", *sample)
}
