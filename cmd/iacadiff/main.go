// Command iacadiff compares the hardware (simulator) measurements against
// the IACA models for one generation (Section 7.2 of the paper): it prints
// the agreement statistics for µop counts and port usage and the named
// discrepancy examples.
//
// Usage:
//
//	iacadiff [-arch Skylake] [-sample 20]
package main

import (
	"flag"
	"fmt"
	"log"

	"uopsinfo/internal/iaca"
	"uopsinfo/internal/report"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iacadiff: ")

	archName := flag.String("arch", "Skylake", "microarchitecture generation")
	sample := flag.Int("sample", 20, "compare every n-th eligible instruction variant (1 = all)")
	flag.Parse()

	arch, err := uarch.ByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	versions := iaca.SupportedVersions(arch.Gen())
	if len(versions) == 0 {
		log.Fatalf("%s is not supported by any IACA version (as in the paper)", arch.Name())
	}
	fmt.Printf("IACA versions supporting %s: %s\n\n", arch.Name(), iaca.DescribeVersions(arch.Gen()))

	row, err := report.BuildTable1Row(arch, report.Table1Options{SampleEvery: *sample})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.FormatTable1([]report.Table1Row{row}))

	fmt.Println("\nNamed discrepancies (Section 7.2):")
	ctx := report.NewContext()
	cs, err := report.IACADiscrepancyStudy(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cs.Format())
}
