// Command iacadiff compares the hardware (simulator) measurements against
// the IACA models for one generation (Section 7.2 of the paper): it prints
// the agreement statistics for µop counts and port usage and the named
// discrepancy examples.
//
// Usage:
//
//	iacadiff [-arch Skylake] [-sample 20] [-j 8] [-cache DIR] [-backend pipesim]
//
// With -j > 1 the characterizers for the chosen generation and for the
// generations of the named discrepancy examples are prewarmed concurrently
// by the characterization engine; -cache reuses blocking sets across
// invocations, and -backend selects the measurement backend.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/report"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iacadiff: ")

	archName := flag.String("arch", "Skylake", `microarchitecture generation (case and separators ignored, e.g. "sandy-bridge")`)
	sample := flag.Int("sample", 20, "compare every n-th eligible instruction variant (1 = all)")
	jobs := flag.Int("j", runtime.NumCPU(), "total number of parallel workers (1 = fully sequential)")
	cacheDir := flag.String("cache", "", "directory of the persistent result store")
	storeMaxBytes := flag.String("store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	storeMaxFiles := flag.Int64("store-max-files", 0, "file-count budget of the persistent store (0: unbounded)")
	storeDurable := flag.Bool("store-durable", false, "fsync store writes before publishing them (one-shot runs default to off)")
	backend := flag.String("backend", "", "measurement backend to run on (default: pipesim)")
	fleet := flag.String("fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	flag.Parse()

	resolvedBackend, err := remote.Setup(*fleet, *backend)
	if err != nil {
		log.Fatal(err)
	}

	arch, err := uarch.ByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	versions := iaca.SupportedVersions(arch.Gen())
	if len(versions) == 0 {
		log.Fatalf("%s is not supported by any IACA version (as in the paper)", arch.Name())
	}
	fmt.Printf("IACA versions supporting %s: %s\n\n", arch.Name(), iaca.DescribeVersions(arch.Gen()))

	ecfg := engine.Config{
		Workers: *jobs, CacheDir: *cacheDir, Backend: resolvedBackend,
		StoreMaxFiles: *storeMaxFiles, StoreDurable: *storeDurable,
	}
	if *storeMaxBytes != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(*storeMaxBytes); err != nil {
			log.Fatalf("-store-max-bytes: %v", err)
		}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := report.NewContextWith(eng)
	if *jobs > 1 {
		// The discrepancy study below always measures on Skylake, Haswell
		// and Nehalem; warm those together with the chosen generation.
		gens := []uarch.Generation{arch.Gen(), uarch.Skylake, uarch.Haswell, uarch.Nehalem}
		if err := ctx.Prewarm(gens); err != nil {
			log.Fatal(err)
		}
	}

	row, err := report.BuildTable1Row(arch, report.Table1Options{SampleEvery: *sample, Context: ctx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.FormatTable1([]report.Table1Row{row}))

	fmt.Println("\nNamed discrepancies (Section 7.2):")
	cs, err := report.IACADiscrepancyStudy(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cs.Format())
}
