// Command analyze is the performance-prediction front end mentioned in the
// paper's conclusion ("a performance-prediction tool similar to Intel's IACA
// supporting all Intel Core microarchitectures"): it reads an Intel-syntax
// loop kernel, runs it as a loop body on the cycle-level simulator of the
// chosen generation, and — where an IACA version supports the generation —
// prints the IACA model's prediction next to it.
//
// Usage:
//
//	analyze -arch Skylake kernel.asm
//	echo 'ADD RAX, RBX' | analyze -arch Haswell
//
// The measurement stack is built by the characterization engine, so analyze
// shares the -j / -cache / -backend configuration surface of the other
// tools; -backend selects which registered execution substrate runs the
// kernel. A kernel analysis is a single direct measurement, which the store
// does not cache yet, so -j and -cache only configure the engine; they are
// accepted for interface consistency and for when direct measurements become
// cacheable.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")

	archName := flag.String("arch", "Skylake", `microarchitecture generation (case and separators ignored, e.g. "sandy-bridge"); an unknown name is an error listing the known ones`)
	jobs := flag.Int("j", runtime.NumCPU(), "total number of parallel workers")
	cacheDir := flag.String("cache", "", "directory of the persistent result store")
	storeMaxBytes := flag.String("store-max-bytes", "", "byte budget of the persistent store (plain bytes or 512M/2G/...); cold digests are evicted LRU past it (empty: unbounded)")
	storeMaxFiles := flag.Int64("store-max-files", 0, "file-count budget of the persistent store (0: unbounded)")
	storeDurable := flag.Bool("store-durable", false, "fsync store writes before publishing them (one-shot runs default to off)")
	backend := flag.String("backend", "", "measurement backend to run on (default: pipesim)")
	fleet := flag.String("fleet", "", "comma-separated uopsd worker URLs to measure on (selects -backend remote; default: $"+remote.EnvFleet+")")
	flag.Parse()

	resolvedBackend, err := remote.Setup(*fleet, *backend)
	if err != nil {
		log.Fatal(err)
	}

	arch, err := uarch.ByName(*archName)
	if err != nil {
		log.Fatal(err)
	}

	var text []byte
	if flag.NArg() > 0 {
		text, err = os.ReadFile(flag.Arg(0))
	} else {
		text, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}

	seq, err := asmgen.ParseSequence(arch.InstrSet(), string(text))
	if err != nil {
		log.Fatal(err)
	}
	if len(seq) == 0 {
		log.Fatal("no instructions to analyze")
	}

	fmt.Printf("Analyzing %d instructions as a loop body on %s\n\n", len(seq), arch.Name())
	for _, inst := range seq {
		perf := arch.Perf(inst.Variant)
		fmt.Printf("  %-32s %d µops  %s\n", inst.String(), perf.NumUops(),
			uarch.FormatPortUsage(perf.PortUsage()))
	}

	ecfg := engine.Config{
		Workers: *jobs, CacheDir: *cacheDir, Backend: resolvedBackend,
		StoreMaxFiles: *storeMaxFiles, StoreDurable: *storeDurable,
	}
	if *storeMaxBytes != "" {
		if ecfg.StoreMaxBytes, err = store.ParseSize(*storeMaxBytes); err != nil {
			log.Fatalf("-store-max-bytes: %v", err)
		}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	h, err := eng.Harness(arch.Gen())
	if err != nil {
		log.Fatal(err)
	}
	res, err := h.Measure(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimulated execution (steady state, dependencies respected):\n")
	fmt.Printf("  cycles per iteration: %.2f\n", res.Cycles)
	fmt.Printf("  µops per iteration:   %.2f (%.2f handled at rename)\n", res.IssuedUops, res.ElimUops)
	fmt.Printf("  port pressure:       ")
	for p, u := range res.PortUops {
		fmt.Printf(" p%d=%.2f", p, u)
	}
	fmt.Println()

	for _, v := range iaca.SupportedVersions(arch.Gen()) {
		a, err := iaca.New(v, arch)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := a.Analyze(seq)
		if err != nil {
			log.Printf("IACA %s: %v", v, err)
			continue
		}
		fmt.Printf("\nIACA %s model (dependencies through flags and memory ignored):\n", v)
		fmt.Printf("  block throughput: %.2f cycles per iteration, %d µops\n", rep.BlockThroughput, rep.TotalUops)
		if rep.HasLatency {
			fmt.Printf("  latency estimate: %.0f cycles\n", rep.Latency)
		}
	}
}
