// Command uopslint runs the repository's static-analysis suite — the
// five analyzers that machine-check the determinism, arena and
// concurrency invariants the code's doc comments promise (see
// internal/analysis and the "Static analysis" section of the README).
//
// Usage:
//
//	uopslint [-C dir] [-analyzers detrange,wallclock] [-list] [packages...]
//
// Packages default to ./... relative to -C (default: the current
// directory). Every finding is printed as file:line:col: analyzer:
// message; the exit status is 1 if there were findings, 2 on usage or
// load errors, and 0 on a clean tree. Findings are suppressed per line
// with //uopslint:ignore <analyzer> <reason>; a malformed suppression is
// itself a finding.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"uopsinfo/internal/analysis"
	"uopsinfo/internal/analysis/uopslint"
)

// errUsage signals that the flag package already printed the diagnostic
// and usage text, so main only needs to set the exit status.
var errUsage = errors.New("usage")

// errFindings signals findings were printed; main exits 1 without
// logging anything further.
var errFindings = errors.New("findings")

func main() {
	log.SetFlags(0)
	log.SetPrefix("uopslint: ")
	if err := run(os.Args[1:], os.Stdout, log.Default()); err != nil {
		switch {
		case errors.Is(err, errFindings):
			os.Exit(1)
		case errors.Is(err, errUsage):
			os.Exit(2)
		default:
			log.Print(err)
			os.Exit(2)
		}
	}
}

func run(args []string, stdout io.Writer, logger *log.Logger) error {
	fs := flag.NewFlagSet("uopslint", flag.ContinueOnError)
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	suite := uopslint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return nil
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (known: %s)",
					name, strings.Join(uopslint.Names(), ", "))
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		return err
	}
	// Ignore directives may legally name any analyzer of the full suite,
	// including ones deselected by -analyzers.
	findings, err := analysis.Check(pkgs, analyzers, uopslint.Names())
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		logger.Printf("%d finding(s)", len(findings))
		return errFindings
	}
	return nil
}
