package main

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"testing"

	"uopsinfo/internal/analysis/uopslint"
)

func runForTest(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, logs bytes.Buffer
	err := run(args, &stdout, log.New(&logs, "", 0))
	return stdout.String(), logs.String(), err
}

func TestRunList(t *testing.T) {
	stdout, _, err := runForTest(t, "-list")
	if err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range uopslint.Names() {
		if !strings.Contains(stdout, name+": ") {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	_, _, err := runForTest(t, "-analyzers", "nosuch")
	if err == nil || !strings.Contains(err.Error(), `unknown analyzer "nosuch"`) {
		t.Fatalf("run -analyzers nosuch: err = %v, want unknown-analyzer error", err)
	}
	for _, name := range uopslint.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-analyzer error should list %s: %v", name, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, _, err := runForTest(t, "-nosuchflag"); !errors.Is(err, errUsage) {
		t.Fatalf("run -nosuchflag: err = %v, want errUsage", err)
	}
}

func TestRunCleanTree(t *testing.T) {
	stdout, logs, err := runForTest(t, "-C", "../..", "./...")
	if err != nil {
		t.Fatalf("run over repository: %v\n%s%s", err, stdout, logs)
	}
	if stdout != "" {
		t.Errorf("clean tree printed findings:\n%s", stdout)
	}
}

func TestRunSubset(t *testing.T) {
	stdout, _, err := runForTest(t, "-C", "../..", "-analyzers", "detrange,wallclock", "./internal/store/...")
	if err != nil {
		t.Fatalf("run subset: %v\n%s", err, stdout)
	}
}
