// Port-usage example: shows why the blocking-instruction algorithm
// (Algorithm 1 of the paper) infers port usage that an isolation-based
// measurement cannot: MOVQ2DQ on Skylake, ADC on Haswell and PBLENDVB on
// Nehalem are measured with both approaches and compared against the
// simulator's ground truth and the IACA models.
//
// Run with:
//
//	go run ./examples/portusage
package main

import (
	"fmt"
	"log"

	"uopsinfo/internal/core"
	"uopsinfo/internal/fog"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)

	cases := []struct {
		gen  uarch.Generation
		name string
	}{
		{uarch.Skylake, "MOVQ2DQ_XMM_MM"},
		{uarch.Haswell, "ADC_R64_R64"},
		{uarch.Nehalem, "PBLENDVB_XMM_XMM"},
	}

	for _, tc := range cases {
		arch := uarch.Get(tc.gen)
		in := arch.InstrSet().Lookup(tc.name)
		if in == nil {
			log.Fatalf("%s not available on %s", tc.name, arch.Name())
		}

		char := core.NewForArch(arch)
		baseline := fog.New(measure.New(pipesim.New(arch)))

		inferred, err := char.PortUsage(in, 2)
		if err != nil {
			log.Fatal(err)
		}
		iso, err := baseline.PortUsageIsolation(in)
		if err != nil {
			log.Fatal(err)
		}
		truth := core.GroundTruthUsage(arch.Perf(in))

		fmt.Printf("%s on %s\n", tc.name, arch.Name())
		fmt.Printf("  ground truth:                  %s\n", truth)
		fmt.Printf("  blocking-instruction algorithm: %s\n", inferred)
		fmt.Printf("  isolation-based attribution:    %s\n", fog.FormatUsage(iso))
		for _, v := range iaca.SupportedVersions(tc.gen) {
			a, err := iaca.New(v, arch)
			if err != nil {
				log.Fatal(err)
			}
			if e, ok := a.Entry(tc.name); ok {
				fmt.Printf("  IACA %-3s:                       %s\n", v, e.UsageString())
			}
		}
		fmt.Println()
	}
}
