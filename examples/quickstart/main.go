// Quickstart: characterize a handful of instructions on the simulated
// Skylake microarchitecture and print their µop count, port usage,
// operand-pair latencies and throughput.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uopsinfo/internal/core"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)

	// Build the characterizer for Skylake: the simulator plays the role of
	// the hardware, and the measurement harness implements the paper's
	// kernel-space measurement protocol on top of it.
	arch := uarch.Get(uarch.Skylake)
	char := core.NewForArch(arch)

	names := []string{
		"ADD_R64_R64",       // simple ALU instruction, four ports
		"IMUL_R64_R64",      // single-port multiply, latency 3
		"ADD_R64_M64",       // memory source operand
		"AESDEC_XMM_XMM",    // AES round
		"MOVQ2DQ_XMM_MM",    // the Section 7.3.3 case study
		"DIV_R64",           // divider-based, value-dependent latency
		"PSHUFD_XMM_XMM_I8", // shuffle, port 5 only
	}

	for _, name := range names {
		in := arch.InstrSet().Lookup(name)
		if in == nil {
			log.Fatalf("instruction %s not available on %s", name, arch.Name())
		}
		res, err := char.CharacterizeInstr(in)
		if err != nil {
			log.Fatalf("characterizing %s: %v", name, err)
		}
		fmt.Printf("%s  (%s)\n", res.Name, in.Signature())
		fmt.Printf("  µops:       %.2f (issued %.2f)\n", res.Uops, res.UopsIssued)
		fmt.Printf("  ports:      %s\n", res.Ports)
		fmt.Printf("  throughput: measured %.2f c/i, computed from ports %.2f c/i\n",
			res.Throughput.Measured, res.Throughput.Computed)
		for _, p := range res.Latency.Pairs {
			kind := ""
			if p.SameRegister {
				kind = " (same register)"
			}
			if p.UpperBound {
				kind = " (upper bound)"
			}
			extra := ""
			if p.FastValueCycles > 0 {
				extra = fmt.Sprintf(", %.1f with fast operand values", p.FastValueCycles)
			}
			fmt.Printf("  latency:    %s -> %s = %.1f cycles%s%s\n", p.SourceName, p.DestName, p.Cycles, extra, kind)
		}
		fmt.Println()
	}
}
