// Throughput example: computes the throughput of instructions from their
// measured port usage by solving the min-max-load optimization problem of
// Section 5.3.2 (with both the combinatorial solver and the simplex-based LP
// solver) and compares it with the measured throughput of independent
// instruction sequences.
//
// Run with:
//
//	go run ./examples/throughputlp
package main

import (
	"fmt"
	"log"

	"uopsinfo/internal/core"
	"uopsinfo/internal/lp"
	"uopsinfo/internal/uarch"
)

func main() {
	log.SetFlags(0)

	arch := uarch.Get(uarch.Skylake)
	char := core.NewForArch(arch)

	names := []string{
		"ADD_R64_R64",       // 1 µop on 4 ports -> 0.25
		"IMUL_R64_R64",      // 1 µop on 1 port  -> 1.0
		"PSHUFD_XMM_XMM_I8", // 1 µop on port 5  -> 1.0
		"PADDD_XMM_XMM",     // 1 µop on 3 ports -> 0.33
		"MOVQ2DQ_XMM_MM",    // 1*p0 + 1*p015    -> 0.67
		"VHADDPD_XMM_XMM_XMM",
		"CMC", // measured throughput 1.0 (flag dependency), computed 0.25
	}

	fmt.Printf("%-22s %-18s %10s %10s %10s\n", "instruction", "ports", "measured", "min-max", "simplex")
	for _, name := range names {
		in := arch.InstrSet().Lookup(name)
		if in == nil {
			log.Fatalf("%s not available on %s", name, arch.Name())
		}
		pu, err := char.PortUsage(in, 0)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := char.Throughput(in, pu)
		if err != nil {
			log.Fatal(err)
		}
		// Solve the same problem with both solvers, feeding the groups in
		// PortUsage.Keys order (the solvers are floating-point; input
		// order must not depend on map iteration).
		var groups []lp.PortGroup
		for _, key := range pu.Keys() {
			var ports []int
			for _, ch := range key {
				ports = append(ports, int(ch-'0'))
			}
			groups = append(groups, lp.PortGroup{Ports: ports, Count: pu[key]})
		}
		exact, err := lp.MinMaxLoad(groups, arch.NumPorts())
		if err != nil {
			log.Fatal(err)
		}
		simplex, err := lp.MinMaxLoadLP(groups, arch.NumPorts())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-18s %10.2f %10.2f %10.2f\n", name, pu.String(), tp.Measured, exact, simplex)
	}
	fmt.Println("\nmeasured = Definition 2 (independent instructions); min-max/simplex = Definition 1 (from port usage)")
}
