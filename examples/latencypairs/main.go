// Latency-pairs example: demonstrates the paper's per-operand-pair latency
// definition on the two headline case studies. AESDEC has different latencies
// from its two source operands on Sandy Bridge and Ivy Bridge (8 vs ~1
// cycles), and SHLD has different latencies on Nehalem (3 vs 4 cycles) and a
// same-register fast path on Skylake — both invisible to a single-number
// latency.
//
// Run with:
//
//	go run ./examples/latencypairs
package main

import (
	"fmt"
	"log"

	"uopsinfo/internal/core"
	"uopsinfo/internal/uarch"
)

func printLatencies(gen uarch.Generation, name string) {
	arch := uarch.Get(gen)
	in := arch.InstrSet().Lookup(name)
	if in == nil {
		fmt.Printf("%s: not available on %s\n\n", name, arch.Name())
		return
	}
	char := core.NewForArch(arch)
	lat, err := char.Latency(in)
	if err != nil {
		log.Fatalf("%s on %s: %v", name, arch.Name(), err)
	}
	fmt.Printf("%s on %s\n", name, arch.Name())
	for _, p := range lat.Pairs {
		suffix := ""
		if p.SameRegister {
			suffix = " (same register for both operands)"
		}
		if p.UpperBound {
			suffix = " (upper bound)"
		}
		fmt.Printf("  lat(%s -> %s) = %.1f cycles%s\n", p.SourceName, p.DestName, p.Cycles, suffix)
	}
	fmt.Println()
}

func main() {
	log.SetFlags(0)

	fmt.Println("== AESDEC XMM1, XMM2 (Section 7.3.1) ==")
	for _, gen := range []uarch.Generation{uarch.Westmere, uarch.SandyBridge, uarch.Haswell, uarch.Skylake} {
		printLatencies(gen, "AESDEC_XMM_XMM")
	}

	fmt.Println("== SHLD R1, R2, imm (Section 7.3.2) ==")
	for _, gen := range []uarch.Generation{uarch.Nehalem, uarch.Skylake} {
		printLatencies(gen, "SHLD_R64_R64_I8")
	}
}
